#include "src/svc/pia_peer.h"

#include <map>
#include <poll.h>
#include <set>

#include "src/crypto/commutative.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/sketch/sketch.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace indaas {
namespace svc {
namespace {

// Assembles the full on-wire bytes of one frame (header [+ extensions]
// + payload) for the pump, which needs the whole message up front to
// interleave sends with receives.
std::string FrameBytes(MsgType type, std::string_view payload,
                       const obs::TraceContext& trace = {},
                       const net::FrameSketchParams& sketch = {}) {
  uint16_t flags = 0;
  if (trace.valid()) {
    flags |= net::kFrameFlagTraceContext;
  }
  if (sketch.valid()) {
    flags |= net::kFrameFlagSketchParams;
  }
  std::string bytes = net::EncodeFrameHeader(static_cast<uint8_t>(type),
                                             static_cast<uint32_t>(payload.size()), flags);
  if (trace.valid()) {
    bytes += net::EncodeTraceContext(trace);
  }
  if (sketch.valid()) {
    bytes += net::EncodeSketchParams(sketch);
  }
  bytes.append(payload.data(), payload.size());
  return bytes;
}

}  // namespace

Result<net::Frame> ExchangeFrames(net::Socket& tx, std::string_view out_bytes,
                                  net::Socket& rx, const net::FrameLimits& limits,
                                  int timeout_ms) {
  size_t sent = 0;
  std::string in_buffer;  // header, then extensions in order, then payload
  bool have_header = false;
  bool have_trace = false;   // trace extension consumed (or absent)
  bool have_reqid = false;   // request-id extension consumed (or absent)
  bool have_sketch = false;  // sketch-params extension consumed (or absent)
  net::FrameHeader header;
  net::Frame frame;
  auto recv_target = [&]() -> size_t {
    if (!have_header) {
      return net::kFrameHeaderBytes;
    }
    if (!have_trace) {
      return net::kTraceContextBytes;
    }
    if (!have_reqid) {
      return net::kRequestIdBytes;
    }
    if (!have_sketch) {
      return net::kSketchParamsBytes;
    }
    return header.payload_size;
  };
  auto recv_done = [&]() {
    return have_header && have_trace && have_reqid && have_sketch &&
           in_buffer.size() >= header.payload_size;
  };
  while (sent < out_bytes.size() || !recv_done()) {
    struct pollfd fds[2];
    int tx_slot = -1;
    int rx_slot = -1;
    int nfds = 0;
    if (sent < out_bytes.size()) {
      fds[nfds] = {tx.fd(), POLLOUT, 0};
      tx_slot = nfds++;
    }
    fds[nfds] = {rx.fd(), POLLIN, 0};
    rx_slot = nfds++;
    int rc = ::poll(fds, static_cast<nfds_t>(nfds), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError("ExchangeFrames: poll failed");
    }
    if (rc == 0) {
      return DeadlineExceededError(
          StrFormat("ring round stalled for %d ms (peer hung or partitioned)", timeout_ms));
    }
    if (tx_slot >= 0 && (fds[tx_slot].revents & (POLLOUT | POLLERR | POLLHUP))) {
      INDAAS_ASSIGN_OR_RETURN(size_t n, tx.SendSome(out_bytes.substr(sent)));
      sent += n;
    }
    if (fds[rx_slot].revents & (POLLIN | POLLERR | POLLHUP)) {
      // Never read past the current frame: bytes beyond it belong to the
      // next round.
      size_t want = recv_target() - in_buffer.size();
      if (want > 0) {
        char chunk[64 * 1024];
        size_t capacity = std::min(want, sizeof(chunk));
        INDAAS_ASSIGN_OR_RETURN(size_t n, rx.RecvSome(chunk, capacity));
        in_buffer.append(chunk, n);
      }
      if (!have_header && in_buffer.size() == net::kFrameHeaderBytes) {
        INDAAS_ASSIGN_OR_RETURN(header, net::DecodeFrameHeader(in_buffer, limits));
        have_header = true;
        have_trace = !header.has_trace_context;
        have_reqid = !header.has_request_id;
        have_sketch = !header.has_sketch_params;
        in_buffer.clear();
      } else if (have_header && !have_trace &&
                 in_buffer.size() == net::kTraceContextBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.trace, net::DecodeTraceContext(in_buffer));
        have_trace = true;
        in_buffer.clear();
      } else if (have_header && have_trace && !have_reqid &&
                 in_buffer.size() == net::kRequestIdBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.request_id, net::DecodeRequestId(in_buffer));
        have_reqid = true;
        in_buffer.clear();
      } else if (have_header && have_trace && have_reqid && !have_sketch &&
                 in_buffer.size() == net::kSketchParamsBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.sketch, net::DecodeSketchParams(in_buffer));
        have_sketch = true;
        in_buffer.clear();
      }
    }
  }
  frame.type = header.type;
  frame.payload = std::move(in_buffer);
  return frame;
}

Result<PiaPeer> PiaPeer::Listen(uint16_t port) {
  INDAAS_ASSIGN_OR_RETURN(net::Socket listener, net::TcpListen(port));
  INDAAS_ASSIGN_OR_RETURN(uint16_t bound, listener.LocalPort());
  return PiaPeer(std::move(listener), bound);
}

Result<PsopResult> PiaPeer::RunPsop(const std::vector<std::string>& dataset,
                                    const PiaPeerOptions& options) {
  const size_t k = options.peers.size();
  const size_t self = options.self_index;
  if (k < 2) {
    return InvalidArgumentError("PiaPeer::RunPsop: need at least two ring peers");
  }
  if (self >= k) {
    return InvalidArgumentError(StrFormat("PiaPeer::RunPsop: self_index %zu out of ring of %zu",
                                          self, k));
  }
  const size_t successor = (self + 1) % k;
  const size_t predecessor = (self + k - 1) % k;

  // Ring peers all start at once — there is no originator whose context we
  // could adopt — so every peer derives the same session trace id from the
  // shared protocol seed, making one ring session one distributed trace.
  obs::TraceContext session{obs::DeriveTraceId(options.psop.seed), 0};
  obs::ScopedTraceContext session_trace(session);

  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop.socket");
  span.Annotate("ring_size", std::to_string(k));
  span.Annotate("self", std::to_string(self));

  // --- Ring setup: connect to the successor while the predecessor connects
  // to us. Retry/backoff absorbs peers that start late.
  INDAAS_ASSIGN_OR_RETURN(
      net::Socket tx, net::ConnectWithRetry(options.peers[successor],
                                            options.connect_timeout_ms, options.retry));
  INDAAS_ASSIGN_OR_RETURN(net::Socket rx, net::TcpAccept(listener_, options.io_timeout_ms));

  // --- Handshake: cross-check the ring geometry and crypto parameters.
  PsopHello hello;
  hello.ring_size = static_cast<uint32_t>(k);
  hello.sender_index = static_cast<uint32_t>(self);
  hello.group_bits = static_cast<uint32_t>(options.psop.group_bits);
  hello.hash_algorithm = static_cast<uint8_t>(options.psop.hash);
  INDAAS_RETURN_IF_ERROR(net::WriteFrame(tx, static_cast<uint8_t>(MsgType::kPsopHello),
                                         EncodePsopHello(hello), options.io_timeout_ms,
                                         session));
  INDAAS_ASSIGN_OR_RETURN(net::Frame hello_frame,
                          net::ReadFrame(rx, options.limits, options.io_timeout_ms));
  if (hello_frame.type != static_cast<uint8_t>(MsgType::kPsopHello)) {
    return ProtocolError("ring handshake: first frame was not a hello");
  }
  INDAAS_ASSIGN_OR_RETURN(PsopHello peer_hello, DecodePsopHello(hello_frame.payload));
  if (peer_hello.ring_size != k || peer_hello.sender_index != predecessor) {
    return ProtocolError(StrFormat(
        "ring handshake mismatch: predecessor claims index %u of %u, expected %zu of %zu",
        peer_hello.sender_index, peer_hello.ring_size, predecessor, k));
  }
  if (peer_hello.group_bits != options.psop.group_bits ||
      peer_hello.hash_algorithm != static_cast<uint8_t>(options.psop.hash)) {
    return ProtocolError("ring handshake mismatch: peers disagree on crypto parameters");
  }

  // --- Crypto setup. Key material is local to this peer; only uniqueness
  // across peers matters, so the seed folds in the ring index.
  INDAAS_ASSIGN_OR_RETURN(CommutativeGroup group,
                          CommutativeGroup::CreateWellKnown(options.psop.group_bits));
  const size_t element_bytes = group.ElementBytes();
  Rng rng(options.psop.seed + 0x9E3779B97F4A7C15ULL * (self + 1));
  INDAAS_ASSIGN_OR_RETURN(CommutativeKey key, CommutativeKey::Generate(group, rng));

  PsopResult result;
  result.party_stats.assign(k, PartyStats{});
  PartyMeter meter(&result.party_stats[self], "psop");

  // --- Phase 0: hash into the group, first encryption, permutation
  // (identical to the in-process engine's phase 0).
  std::vector<BigUint> current;
  {
    INDAAS_TRACE_SPAN("pia.psop.encrypt_permute");
    PartyComputeTimer timer(meter);
    std::vector<std::string> elements = DisambiguateMultiset(dataset);
    current.reserve(elements.size());
    for (const std::string& element : elements) {
      BigUint point = group.HashToElement(element, options.psop.hash);
      current.push_back(key.Encrypt(group, point));
      meter.AddEncryptOps();
    }
    rng.Shuffle(current);
  }

  // Sends `current` tagged with its origin while receiving the predecessor's
  // dataset of the same round; validates type and origin on the way in.
  // `xseq` numbers the session's exchanges: ring rounds are lockstep, so
  // the same xseq on different peers is the same round — which is what
  // trace-merge uses to align per-peer clocks.
  size_t xseq = 0;
  auto exchange = [&](MsgType type, uint32_t send_origin,
                      uint32_t expect_origin) -> Result<std::vector<BigUint>> {
    INDAAS_TRACE_SPAN_NAMED(hop_span, "pia.ring.exchange");
    hop_span.Annotate("xseq", std::to_string(xseq++));
    hop_span.Annotate("self", std::to_string(self));
    PsopDataset out;
    out.origin = send_origin;
    out.element_bytes = static_cast<uint32_t>(element_bytes);
    out.elements = std::move(current);
    std::string out_bytes = FrameBytes(type, EncodePsopDataset(out), session);
    meter.AddBytesSent(out_bytes.size());
    INDAAS_ASSIGN_OR_RETURN(
        net::Frame frame, ExchangeFrames(tx, out_bytes, rx, options.limits,
                                         options.io_timeout_ms));
    if (frame.type != static_cast<uint8_t>(type)) {
      return ProtocolError(StrFormat("ring round got frame type %u, want %u", frame.type,
                                     static_cast<uint8_t>(type)));
    }
    meter.AddBytesReceived(net::kFrameHeaderBytes + frame.payload.size());
    INDAAS_ASSIGN_OR_RETURN(PsopDataset in, DecodePsopDataset(frame.payload));
    if (in.origin != expect_origin) {
      return ProtocolError(StrFormat("ring round got dataset of origin %u, want %u", in.origin,
                                     expect_origin));
    }
    if (in.element_bytes != element_bytes) {
      return ProtocolError("ring peers disagree on group element width");
    }
    return std::move(in.elements);
  };

  // --- Phase 1: k ring hops; every hop encrypts and permutes, except the
  // last, which returns each dataset to its fully-encrypted origin.
  {
    INDAAS_TRACE_SPAN("pia.psop.ring");
    for (size_t hop = 0; hop < k; ++hop) {
      uint32_t send_origin = static_cast<uint32_t>((self + k - hop) % k);
      uint32_t expect_origin = static_cast<uint32_t>((self + k - hop - 1) % k);
      INDAAS_ASSIGN_OR_RETURN(current, exchange(MsgType::kPsopDataset, send_origin,
                                                expect_origin));
      if (hop + 1 < k) {
        PartyComputeTimer timer(meter);
        for (BigUint& element : current) {
          element = key.Encrypt(group, element);
          meter.AddEncryptOps();
        }
        rng.Shuffle(current);
      }
    }
  }

  // --- Phase 2: ring all-gather of the fully-encrypted datasets, counting
  // as they arrive. Each dataset is charged once per forwarding hop, which
  // totals the same k-1 transmissions the in-process broadcast accounts.
  std::map<std::string, size_t> presence;  // ciphertext -> #parties holding it
  auto count_dataset = [&](const std::vector<BigUint>& elements) {
    PartyComputeTimer timer(meter);
    std::set<std::string> local;
    for (const BigUint& element : elements) {
      local.insert(element.ToHex());
    }
    for (const std::string& ciphertext : local) {
      ++presence[ciphertext];
    }
  };
  {
    INDAAS_TRACE_SPAN("pia.psop.share_count");
    count_dataset(current);
    for (size_t hop = 0; hop + 1 < k; ++hop) {
      uint32_t send_origin = static_cast<uint32_t>((self + k - hop) % k);
      uint32_t expect_origin = static_cast<uint32_t>((self + k - hop - 1) % k);
      INDAAS_ASSIGN_OR_RETURN(current, exchange(MsgType::kPsopShare, send_origin,
                                                expect_origin));
      count_dataset(current);
    }
  }
  {
    PartyComputeTimer timer(meter);
    result.union_size = presence.size();
    for (const auto& [ciphertext, count] : presence) {
      (void)ciphertext;
      if (count == k) {
        ++result.intersection;
      }
    }
  }
  result.jaccard = result.union_size == 0
                       ? 0.0
                       : static_cast<double>(result.intersection) /
                             static_cast<double>(result.union_size);
  static obs::Counter* sessions =
      obs::MetricsRegistry::Global().GetCounter("pia.socket_sessions_total");
  sessions->Increment();
  return result;
}

Result<PsopResult> PiaPeer::RunPsopWithSketch(const std::vector<std::string>& dataset,
                                              const PiaPeerOptions& options) {
  const size_t k = options.peers.size();
  const size_t self = options.self_index;
  if (k < 2) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: need at least two ring peers");
  }
  if (self >= k) {
    return InvalidArgumentError(StrFormat(
        "PiaPeer::RunPsopWithSketch: self_index %zu out of ring of %zu", self, k));
  }
  if (options.sketch_k == 0 || options.sketch_k > UINT16_MAX) {
    return InvalidArgumentError(StrFormat(
        "PiaPeer::RunPsopWithSketch: sketch_k %u out of range [1, %u]", options.sketch_k,
        UINT16_MAX));
  }
  if (options.lsh_bands > UINT16_MAX || options.lsh_rows > UINT16_MAX) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: LSH geometry exceeds u16");
  }
  if (dataset.empty()) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: empty dataset");
  }
  const size_t successor = (self + 1) % k;
  const size_t predecessor = (self + k - 1) % k;

  net::FrameSketchParams geometry;
  geometry.k = static_cast<uint16_t>(options.sketch_k);
  geometry.bands = static_cast<uint16_t>(options.lsh_bands);
  geometry.rows = static_cast<uint16_t>(options.lsh_rows);

  obs::TraceContext session{obs::DeriveTraceId(options.psop.seed), 0};
  obs::ScopedTraceContext session_trace(session);

  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop.sketch.socket");
  span.Annotate("ring_size", std::to_string(k));
  span.Annotate("self", std::to_string(self));

  INDAAS_ASSIGN_OR_RETURN(
      net::Socket tx, net::ConnectWithRetry(options.peers[successor],
                                            options.connect_timeout_ms, options.retry));
  INDAAS_ASSIGN_OR_RETURN(net::Socket rx, net::TcpAccept(listener_, options.io_timeout_ms));

  // --- Handshake: ring geometry plus the sketch-params extension. A peer
  // running the encrypted protocol (or an old build that predates the
  // extension) rejects the unknown flag bit before any registers move.
  PsopHello hello;
  hello.ring_size = static_cast<uint32_t>(k);
  hello.sender_index = static_cast<uint32_t>(self);
  hello.group_bits = static_cast<uint32_t>(options.psop.group_bits);
  hello.hash_algorithm = static_cast<uint8_t>(options.psop.hash);
  INDAAS_RETURN_IF_ERROR(net::WriteFrame(tx, static_cast<uint8_t>(MsgType::kPsopHello),
                                         EncodePsopHello(hello), options.io_timeout_ms,
                                         session, 0, geometry));
  INDAAS_ASSIGN_OR_RETURN(net::Frame hello_frame,
                          net::ReadFrame(rx, options.limits, options.io_timeout_ms));
  if (hello_frame.type != static_cast<uint8_t>(MsgType::kPsopHello)) {
    return ProtocolError("sketch ring handshake: first frame was not a hello");
  }
  INDAAS_ASSIGN_OR_RETURN(PsopHello peer_hello, DecodePsopHello(hello_frame.payload));
  if (peer_hello.ring_size != k || peer_hello.sender_index != predecessor) {
    return ProtocolError(StrFormat(
        "sketch ring handshake mismatch: predecessor claims index %u of %u, expected %zu of %zu",
        peer_hello.sender_index, peer_hello.ring_size, predecessor, k));
  }
  if (!hello_frame.sketch.valid()) {
    return ProtocolError("sketch ring handshake: predecessor sent no sketch-params extension");
  }
  if (hello_frame.sketch != geometry) {
    return ProtocolError(StrFormat(
        "sketch ring handshake mismatch: predecessor sketches k=%u bands=%u rows=%u, "
        "expected k=%u bands=%u rows=%u",
        hello_frame.sketch.k, hello_frame.sketch.bands, hello_frame.sketch.rows, geometry.k,
        geometry.bands, geometry.rows));
  }

  PsopResult result;
  result.party_stats.assign(k, PartyStats{});
  PartyMeter meter(&result.party_stats[self], "sketch");

  // --- Local sketching under the shared seed; nothing about the raw
  // dataset ever leaves this peer.
  sketch::SketchParams params;
  params.k = options.sketch_k;
  params.seed = PsopSketchSeed(options.psop.seed);
  sketch::SketchArena arena(options.sketch_k, k);
  {
    INDAAS_TRACE_SPAN("pia.psop.sketch.build");
    PartyComputeTimer timer(meter);
    sketch::BuildSketch(params, dataset, arena.At(self));
  }

  // --- Ring all-gather: k-1 lockstep hops; after hop h this peer holds the
  // sketch originated by (self - h - 1) mod k.
  std::vector<uint32_t> current(arena.At(self), arena.At(self) + options.sketch_k);
  size_t xseq = 0;
  {
    INDAAS_TRACE_SPAN("pia.psop.sketch.ring");
    for (size_t hop = 0; hop + 1 < k; ++hop) {
      INDAAS_TRACE_SPAN_NAMED(hop_span, "pia.ring.exchange");
      hop_span.Annotate("xseq", std::to_string(xseq++));
      hop_span.Annotate("self", std::to_string(self));
      uint32_t send_origin = static_cast<uint32_t>((self + k - hop) % k);
      uint32_t expect_origin = static_cast<uint32_t>((self + k - hop - 1) % k);
      PsopSketch out;
      out.origin = send_origin;
      out.registers = std::move(current);
      std::string out_bytes =
          FrameBytes(MsgType::kPsopSketch, EncodePsopSketch(out), session, geometry);
      meter.AddBytesSent(out_bytes.size());
      INDAAS_ASSIGN_OR_RETURN(
          net::Frame frame, ExchangeFrames(tx, out_bytes, rx, options.limits,
                                           options.io_timeout_ms));
      if (frame.type != static_cast<uint8_t>(MsgType::kPsopSketch)) {
        return ProtocolError(StrFormat("sketch ring round got frame type %u, want %u",
                                       frame.type,
                                       static_cast<uint8_t>(MsgType::kPsopSketch)));
      }
      size_t received = net::kFrameHeaderBytes + frame.payload.size() +
                        (frame.trace.valid() ? net::kTraceContextBytes : 0) +
                        (frame.sketch.valid() ? net::kSketchParamsBytes : 0);
      meter.AddBytesReceived(received);
      if (!frame.sketch.valid() || frame.sketch != geometry) {
        return ProtocolError("sketch ring round: peer changed sketch geometry mid-session");
      }
      INDAAS_ASSIGN_OR_RETURN(PsopSketch in, DecodePsopSketch(frame.payload));
      if (in.origin != expect_origin) {
        return ProtocolError(StrFormat("sketch ring round got sketch of origin %u, want %u",
                                       in.origin, expect_origin));
      }
      if (in.registers.size() != options.sketch_k) {
        return ProtocolError(StrFormat("sketch ring round got %zu registers, want %u",
                                       in.registers.size(), options.sketch_k));
      }
      std::copy(in.registers.begin(), in.registers.end(), arena.At(expect_origin));
      current = std::move(in.registers);
    }
  }

  // --- Count k-way register agreement; same estimator as the in-process
  // engine, so the two are byte-identical on identical datasets and seed.
  {
    PartyComputeTimer timer(meter);
    size_t agree = 0;
    for (uint32_t r = 0; r < options.sketch_k; ++r) {
      const uint32_t v = arena.At(0)[r];
      bool all = true;
      for (size_t i = 1; i < k && all; ++i) {
        all = arena.At(i)[r] == v;
      }
      agree += all;
    }
    result.intersection = agree;
    result.union_size = options.sketch_k;
    result.jaccard = static_cast<double>(agree) / static_cast<double>(options.sketch_k);
  }
  static obs::Counter* sketch_sessions =
      obs::MetricsRegistry::Global().GetCounter("pia.sketch_socket_sessions_total");
  sketch_sessions->Increment();
  return result;
}

}  // namespace svc
}  // namespace indaas
