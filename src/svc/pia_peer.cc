#include "src/svc/pia_peer.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <poll.h>
#include <set>
#include <thread>

#include "src/crypto/commutative.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/sketch/sketch.h"
#include "src/svc/proto.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace indaas {
namespace svc {
namespace {

// Widest ring degraded recovery can express: the membership extension is a
// u32 bitmask of original indices.
constexpr size_t kMaxDegradedRing = 32;

// How long one TcpAccept waits inside the classify loops; short so probe
// answering and deadline checks stay responsive.
constexpr int kAcceptSliceMs = 200;

// Assembles the full on-wire bytes of one frame (header [+ extensions]
// + payload) for the pump, which needs the whole message up front to
// interleave sends with receives.
std::string FrameBytes(MsgType type, std::string_view payload,
                       const obs::TraceContext& trace = {},
                       const net::FrameSketchParams& sketch = {},
                       const net::FrameRingMembership& ring = {}) {
  uint16_t flags = 0;
  if (trace.valid()) {
    flags |= net::kFrameFlagTraceContext;
  }
  if (sketch.valid()) {
    flags |= net::kFrameFlagSketchParams;
  }
  if (ring.valid()) {
    flags |= net::kFrameFlagRingMembership;
  }
  std::string bytes = net::EncodeFrameHeader(static_cast<uint8_t>(type),
                                             static_cast<uint32_t>(payload.size()), flags);
  if (trace.valid()) {
    bytes += net::EncodeTraceContext(trace);
  }
  if (sketch.valid()) {
    bytes += net::EncodeSketchParams(sketch);
  }
  if (ring.valid()) {
    bytes += net::EncodeRingMembership(ring);
  }
  bytes.append(payload.data(), payload.size());
  return bytes;
}

uint32_t MembershipMask(const std::vector<uint32_t>& members) {
  uint32_t mask = 0;
  for (uint32_t index : members) {
    mask |= 1u << index;
  }
  return mask;
}

// Only transport-level faults are worth a ring reformation; a protocol
// violation or a local error re-occurs on retry and fails typed instead.
bool RecoverableRingError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

obs::Counter* DegradedAudits() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.degraded_audits");
  return counter;
}

obs::Counter* RingRecoveries() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("pia.ring_recoveries");
  return counter;
}

}  // namespace

Result<net::Frame> ExchangeFrames(net::Socket& tx, std::string_view out_bytes,
                                  net::Socket& rx, const net::FrameLimits& limits,
                                  int timeout_ms) {
  size_t sent = 0;
  std::string in_buffer;  // header, then extensions in order, then payload
  bool have_header = false;
  bool have_trace = false;   // trace extension consumed (or absent)
  bool have_reqid = false;   // request-id extension consumed (or absent)
  bool have_sketch = false;  // sketch-params extension consumed (or absent)
  bool have_ring = false;    // ring-membership extension consumed (or absent)
  net::FrameHeader header;
  net::Frame frame;
  auto recv_target = [&]() -> size_t {
    if (!have_header) {
      return net::kFrameHeaderBytes;
    }
    if (!have_trace) {
      return net::kTraceContextBytes;
    }
    if (!have_reqid) {
      return net::kRequestIdBytes;
    }
    if (!have_sketch) {
      return net::kSketchParamsBytes;
    }
    if (!have_ring) {
      return net::kRingMembershipBytes;
    }
    return header.payload_size;
  };
  auto recv_done = [&]() {
    return have_header && have_trace && have_reqid && have_sketch && have_ring &&
           in_buffer.size() >= header.payload_size;
  };
  // Progress-based deadline: every byte moved in either direction resets
  // it. The clock matters because readiness is no guarantee of progress — a
  // connection a fault-injection stall (src/net/chaos.h) has pinned stays
  // kernel-readable while RecvSome reports nothing, and without a deadline
  // of our own this loop would spin on poll forever.
  auto last_progress = std::chrono::steady_clock::now();
  while (sent < out_bytes.size() || !recv_done()) {
    const auto now = std::chrono::steady_clock::now();
    const int elapsed_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_progress).count());
    if (elapsed_ms >= timeout_ms) {
      return DeadlineExceededError(
          StrFormat("ring round stalled for %d ms (peer hung or partitioned)", timeout_ms));
    }
    struct pollfd fds[2];
    int tx_slot = -1;
    int rx_slot = -1;
    int nfds = 0;
    if (sent < out_bytes.size()) {
      fds[nfds] = {tx.fd(), POLLOUT, 0};
      tx_slot = nfds++;
    }
    fds[nfds] = {rx.fd(), POLLIN, 0};
    rx_slot = nfds++;
    int rc = ::poll(fds, static_cast<nfds_t>(nfds), timeout_ms - elapsed_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError("ExchangeFrames: poll failed");
    }
    if (rc == 0) {
      return DeadlineExceededError(
          StrFormat("ring round stalled for %d ms (peer hung or partitioned)", timeout_ms));
    }
    size_t moved = 0;
    if (tx_slot >= 0 && (fds[tx_slot].revents & (POLLOUT | POLLERR | POLLHUP))) {
      INDAAS_ASSIGN_OR_RETURN(size_t n, tx.SendSome(out_bytes.substr(sent)));
      sent += n;
      moved += n;
    }
    if (fds[rx_slot].revents & (POLLIN | POLLERR | POLLHUP)) {
      // Never read past the current frame: bytes beyond it belong to the
      // next round.
      size_t want = recv_target() - in_buffer.size();
      if (want > 0) {
        char chunk[64 * 1024];
        size_t capacity = std::min(want, sizeof(chunk));
        INDAAS_ASSIGN_OR_RETURN(size_t n, rx.RecvSome(chunk, capacity));
        in_buffer.append(chunk, n);
        moved += n;
      }
      if (!have_header && in_buffer.size() == net::kFrameHeaderBytes) {
        INDAAS_ASSIGN_OR_RETURN(header, net::DecodeFrameHeader(in_buffer, limits));
        have_header = true;
        have_trace = !header.has_trace_context;
        have_reqid = !header.has_request_id;
        have_sketch = !header.has_sketch_params;
        have_ring = !header.has_ring_membership;
        in_buffer.clear();
      } else if (have_header && !have_trace &&
                 in_buffer.size() == net::kTraceContextBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.trace, net::DecodeTraceContext(in_buffer));
        have_trace = true;
        in_buffer.clear();
      } else if (have_header && have_trace && !have_reqid &&
                 in_buffer.size() == net::kRequestIdBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.request_id, net::DecodeRequestId(in_buffer));
        have_reqid = true;
        in_buffer.clear();
      } else if (have_header && have_trace && have_reqid && !have_sketch &&
                 in_buffer.size() == net::kSketchParamsBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.sketch, net::DecodeSketchParams(in_buffer));
        have_sketch = true;
        in_buffer.clear();
      } else if (have_header && have_trace && have_reqid && have_sketch && !have_ring &&
                 in_buffer.size() == net::kRingMembershipBytes) {
        INDAAS_ASSIGN_OR_RETURN(frame.ring, net::DecodeRingMembership(in_buffer));
        have_ring = true;
        in_buffer.clear();
      }
    }
    if (moved > 0) {
      last_progress = std::chrono::steady_clock::now();
    } else {
      // Readable/writable but nothing moved (stalled connection): pace the
      // retry so the deadline is a sleep, not a CPU spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  frame.type = header.type;
  frame.payload = std::move(in_buffer);
  return frame;
}

Result<PiaPeer> PiaPeer::Listen(uint16_t port) {
  INDAAS_ASSIGN_OR_RETURN(net::Socket listener, net::TcpListen(port));
  INDAAS_ASSIGN_OR_RETURN(uint16_t bound, listener.LocalPort());
  return PiaPeer(std::move(listener), bound);
}

Result<PsopResult> PiaPeer::RunPsop(const std::vector<std::string>& dataset,
                                    const PiaPeerOptions& options) {
  const size_t k = options.peers.size();
  const size_t self = options.self_index;
  if (k < 2) {
    return InvalidArgumentError("PiaPeer::RunPsop: need at least two ring peers");
  }
  if (self >= k) {
    return InvalidArgumentError(StrFormat("PiaPeer::RunPsop: self_index %zu out of ring of %zu",
                                          self, k));
  }
  if (options.allow_degraded && k > kMaxDegradedRing) {
    return InvalidArgumentError(StrFormat(
        "PiaPeer::RunPsop: degraded recovery supports at most %zu peers (membership bitmask "
        "width), ring has %zu",
        kMaxDegradedRing, k));
  }

  std::vector<uint32_t> members(k);
  for (size_t i = 0; i < k; ++i) {
    members[i] = static_cast<uint32_t>(i);
  }
  PendingHello pending;

  uint32_t attempt = 0;
  for (;;) {
    Result<PsopResult> run = RunPsopAttempt(dataset, options, members, attempt, &pending);
    if (run.ok()) {
      PsopResult result = std::move(*run);
      result.recovery_attempts = attempt;
      for (uint32_t index = 0; index < k; ++index) {
        if (std::find(members.begin(), members.end(), index) == members.end()) {
          result.excluded.push_back(index);
        }
      }
      if (result.degraded()) {
        DegradedAudits()->Increment();
        INDAAS_SLOG(Warn, "pia.ring_degraded_result")
            .Kv("self", static_cast<uint64_t>(self))
            .Kv("survivors", static_cast<uint64_t>(members.size()))
            .Kv("excluded", static_cast<uint64_t>(result.excluded.size()))
            .Kv("attempts", static_cast<uint64_t>(attempt));
      }
      return result;
    }
    const Status& error = run.status();
    if (!options.allow_degraded || !RecoverableRingError(error) ||
        attempt >= options.max_recovery_attempts) {
      return error;
    }
    ++attempt;
    RingRecoveries()->Increment();
    INDAAS_SLOG(Warn, "pia.ring_fault")
        .Kv("self", static_cast<uint64_t>(self))
        .Kv("attempt", static_cast<uint64_t>(attempt))
        .Kv("error", error.ToString());
    INDAAS_ASSIGN_OR_RETURN(members, ProbeSurvivors(options, attempt, &pending));
    if (members.size() < 2) {
      return UnavailableError(StrFormat(
          "ring collapsed: only %zu of %zu peers alive after recovery probe", members.size(),
          k));
    }
  }
}

Result<PsopResult> PiaPeer::RunPsopAttempt(const std::vector<std::string>& dataset,
                                           const PiaPeerOptions& options,
                                           const std::vector<uint32_t>& members,
                                           uint32_t attempt, PendingHello* pending) {
  const size_t k = options.peers.size();
  const size_t m = members.size();
  const uint32_t self = static_cast<uint32_t>(options.self_index);
  size_t pos = m;
  for (size_t i = 0; i < m; ++i) {
    if (members[i] == self) {
      pos = i;
    }
  }
  if (pos == m) {
    return InternalError("reformed ring does not include this peer");
  }
  const uint32_t successor = members[(pos + 1) % m];
  const uint32_t predecessor = members[(pos + m - 1) % m];

  // Attempt 0 is the pristine ring and stays extension-free on the wire;
  // reformed rings stamp every frame so peers with a divergent membership
  // view — or pre-upgrade peers that never learned the flag — fail closed.
  net::FrameRingMembership ring;
  if (attempt > 0) {
    ring.attempt = static_cast<uint16_t>(attempt);
    ring.members = MembershipMask(members);
  }

  // Ring peers all start at once — there is no originator whose context we
  // could adopt — so every peer derives the same session trace id from the
  // shared protocol seed, making one ring session one distributed trace.
  obs::TraceContext session{obs::DeriveTraceId(options.psop.seed), 0};
  obs::ScopedTraceContext session_trace(session);

  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop.socket");
  span.Annotate("ring_size", std::to_string(m));
  span.Annotate("self", std::to_string(self));
  if (attempt > 0) {
    span.Annotate("attempt", std::to_string(attempt));
  }

  // --- Ring setup: connect to the successor while the predecessor connects
  // to us. Retry/backoff absorbs peers that start late.
  INDAAS_ASSIGN_OR_RETURN(
      net::Socket tx, net::ConnectWithRetry(options.peers[successor],
                                            options.connect_timeout_ms, options.retry));

  // --- Handshake: cross-check the ring geometry and crypto parameters.
  PsopHello hello;
  hello.ring_size = static_cast<uint32_t>(m);
  hello.sender_index = self;
  hello.group_bits = static_cast<uint32_t>(options.psop.group_bits);
  hello.hash_algorithm = static_cast<uint8_t>(options.psop.hash);

  net::Socket rx;
  net::Frame hello_frame;
  if (!options.allow_degraded) {
    // Pre-recovery path, preserved exactly: accept the predecessor, then
    // trade hellos.
    INDAAS_ASSIGN_OR_RETURN(rx, net::TcpAccept(listener_, options.io_timeout_ms));
    INDAAS_RETURN_IF_ERROR(net::WriteFrame(tx, static_cast<uint8_t>(MsgType::kPsopHello),
                                           EncodePsopHello(hello), options.io_timeout_ms,
                                           session));
    INDAAS_ASSIGN_OR_RETURN(hello_frame,
                            net::ReadFrame(rx, options.limits, options.io_timeout_ms));
  } else {
    // Recovery-capable path: send our hello first (it fits any send buffer
    // even before the successor accepts), then classify inbound connections
    // until the predecessor's hello arrives — the listener must keep
    // answering liveness probes from peers still deciding who survived.
    INDAAS_RETURN_IF_ERROR(net::WriteFrame(tx, static_cast<uint8_t>(MsgType::kPsopHello),
                                           EncodePsopHello(hello), options.io_timeout_ms,
                                           session, 0, {}, ring));
    INDAAS_ASSIGN_OR_RETURN(auto accepted,
                            AwaitHello(options, attempt, options.io_timeout_ms, pending));
    rx = std::move(accepted.first);
    hello_frame = std::move(accepted.second);
  }

  if (hello_frame.type != static_cast<uint8_t>(MsgType::kPsopHello)) {
    return ProtocolError("ring handshake: first frame was not a hello");
  }
  if (attempt > 0) {
    if (!hello_frame.ring.valid() || hello_frame.ring != ring) {
      return ProtocolError(StrFormat(
          "degraded ring handshake: predecessor sent attempt %u membership 0x%08X, want "
          "attempt %u membership 0x%08X",
          hello_frame.ring.attempt, hello_frame.ring.members, ring.attempt, ring.members));
    }
  } else if (hello_frame.ring.valid()) {
    return ProtocolError(
        "ring handshake: unexpected ring-membership extension on a pristine ring");
  }
  INDAAS_ASSIGN_OR_RETURN(PsopHello peer_hello, DecodePsopHello(hello_frame.payload));
  if (peer_hello.ring_size != m || peer_hello.sender_index != predecessor) {
    return ProtocolError(StrFormat(
        "ring handshake mismatch: predecessor claims index %u of %u, expected %u of %zu",
        peer_hello.sender_index, peer_hello.ring_size, predecessor, m));
  }
  if (peer_hello.group_bits != options.psop.group_bits ||
      peer_hello.hash_algorithm != static_cast<uint8_t>(options.psop.hash)) {
    return ProtocolError("ring handshake mismatch: peers disagree on crypto parameters");
  }

  // --- Crypto setup. Key material is local to this peer; only uniqueness
  // across peers matters, so the seed folds in the *original* ring index —
  // stable across reformations.
  INDAAS_ASSIGN_OR_RETURN(CommutativeGroup group,
                          CommutativeGroup::CreateWellKnown(options.psop.group_bits));
  const size_t element_bytes = group.ElementBytes();
  Rng rng(options.psop.seed + 0x9E3779B97F4A7C15ULL * (self + 1));
  INDAAS_ASSIGN_OR_RETURN(CommutativeKey key, CommutativeKey::Generate(group, rng));

  PsopResult result;
  result.party_stats.assign(k, PartyStats{});
  PartyMeter meter(&result.party_stats[self], "psop");

  // --- Phase 0: hash into the group, first encryption, permutation
  // (identical to the in-process engine's phase 0).
  std::vector<BigUint> current;
  {
    INDAAS_TRACE_SPAN("pia.psop.encrypt_permute");
    PartyComputeTimer timer(meter);
    std::vector<std::string> elements = DisambiguateMultiset(dataset);
    current.reserve(elements.size());
    for (const std::string& element : elements) {
      BigUint point = group.HashToElement(element, options.psop.hash);
      current.push_back(key.Encrypt(group, point));
      meter.AddEncryptOps();
    }
    rng.Shuffle(current);
  }

  // Sends `current` tagged with its origin while receiving the predecessor's
  // dataset of the same round; validates type and origin on the way in.
  // `xseq` numbers the session's exchanges: ring rounds are lockstep, so
  // the same xseq on different peers is the same round — which is what
  // trace-merge uses to align per-peer clocks.
  size_t xseq = 0;
  auto exchange = [&](MsgType type, uint32_t send_origin,
                      uint32_t expect_origin) -> Result<std::vector<BigUint>> {
    if (xseq >= options.fail_after_exchanges) {
      // Test seam: die abruptly. Closing both ring sockets cascades the
      // fault to the neighbours within one io timeout; the non-recoverable
      // error keeps this peer out of any reformed ring.
      tx.Close();
      rx.Close();
      return InternalError("pia test seam: simulated peer death");
    }
    INDAAS_TRACE_SPAN_NAMED(hop_span, "pia.ring.exchange");
    hop_span.Annotate("xseq", std::to_string(xseq++));
    hop_span.Annotate("self", std::to_string(self));
    PsopDataset out;
    out.origin = send_origin;
    out.element_bytes = static_cast<uint32_t>(element_bytes);
    out.elements = std::move(current);
    std::string out_bytes = FrameBytes(type, EncodePsopDataset(out), session, {}, ring);
    meter.AddBytesSent(out_bytes.size());
    INDAAS_ASSIGN_OR_RETURN(
        net::Frame frame, ExchangeFrames(tx, out_bytes, rx, options.limits,
                                         options.io_timeout_ms));
    if (frame.type != static_cast<uint8_t>(type)) {
      return ProtocolError(StrFormat("ring round got frame type %u, want %u", frame.type,
                                     static_cast<uint8_t>(type)));
    }
    if (attempt > 0) {
      if (!frame.ring.valid() || frame.ring != ring) {
        return ProtocolError("ring round: peer membership view diverged mid-session");
      }
    } else if (frame.ring.valid()) {
      return ProtocolError("ring round: unexpected ring-membership extension on a pristine "
                           "ring");
    }
    meter.AddBytesReceived(net::kFrameHeaderBytes + frame.payload.size());
    INDAAS_ASSIGN_OR_RETURN(PsopDataset in, DecodePsopDataset(frame.payload));
    if (in.origin != expect_origin) {
      return ProtocolError(StrFormat("ring round got dataset of origin %u, want %u", in.origin,
                                     expect_origin));
    }
    if (in.element_bytes != element_bytes) {
      return ProtocolError("ring peers disagree on group element width");
    }
    return std::move(in.elements);
  };

  // --- Phase 1: m ring hops; every hop encrypts and permutes, except the
  // last, which returns each dataset to its fully-encrypted origin. Origins
  // are *original* indices mapped through the surviving member list.
  {
    INDAAS_TRACE_SPAN("pia.psop.ring");
    for (size_t hop = 0; hop < m; ++hop) {
      uint32_t send_origin = members[(pos + m - hop) % m];
      uint32_t expect_origin = members[(pos + m - hop - 1) % m];
      INDAAS_ASSIGN_OR_RETURN(current, exchange(MsgType::kPsopDataset, send_origin,
                                                expect_origin));
      if (hop + 1 < m) {
        PartyComputeTimer timer(meter);
        for (BigUint& element : current) {
          element = key.Encrypt(group, element);
          meter.AddEncryptOps();
        }
        rng.Shuffle(current);
      }
    }
  }

  // --- Phase 2: ring all-gather of the fully-encrypted datasets, counting
  // as they arrive. Each dataset is charged once per forwarding hop, which
  // totals the same m-1 transmissions the in-process broadcast accounts.
  std::map<std::string, size_t> presence;  // ciphertext -> #parties holding it
  auto count_dataset = [&](const std::vector<BigUint>& elements) {
    PartyComputeTimer timer(meter);
    std::set<std::string> local;
    for (const BigUint& element : elements) {
      local.insert(element.ToHex());
    }
    for (const std::string& ciphertext : local) {
      ++presence[ciphertext];
    }
  };
  {
    INDAAS_TRACE_SPAN("pia.psop.share_count");
    count_dataset(current);
    for (size_t hop = 0; hop + 1 < m; ++hop) {
      uint32_t send_origin = members[(pos + m - hop) % m];
      uint32_t expect_origin = members[(pos + m - hop - 1) % m];
      INDAAS_ASSIGN_OR_RETURN(current, exchange(MsgType::kPsopShare, send_origin,
                                                expect_origin));
      count_dataset(current);
    }
  }
  {
    PartyComputeTimer timer(meter);
    result.union_size = presence.size();
    for (const auto& [ciphertext, count] : presence) {
      (void)ciphertext;
      if (count == m) {
        ++result.intersection;
      }
    }
  }
  result.jaccard = result.union_size == 0
                       ? 0.0
                       : static_cast<double>(result.intersection) /
                             static_cast<double>(result.union_size);
  static obs::Counter* sessions =
      obs::MetricsRegistry::Global().GetCounter("pia.socket_sessions_total");
  sessions->Increment();
  return result;
}

Result<std::vector<uint32_t>> PiaPeer::ProbeSurvivors(const PiaPeerOptions& options,
                                                      uint32_t attempt,
                                                      PendingHello* pending) {
  const size_t k = options.peers.size();
  const uint32_t self = static_cast<uint32_t>(options.self_index);
  std::vector<bool> alive(k, false);
  alive[self] = true;
  const std::string probe_payload = EncodePsopProbe(PsopProbe{self, attempt});
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.probe_window_ms);
  // Sweep the undecided peers until everyone answered or the window closes.
  // A peer that is itself still detecting the fault answers a later sweep;
  // only peers silent for the whole window are ejected.
  for (;;) {
    bool undecided = false;
    for (uint32_t peer = 0; peer < static_cast<uint32_t>(k); ++peer) {
      if (peer == self || alive[peer]) {
        continue;
      }
      // One probe round trip on a throwaway connection. A connect that
      // lands in a dead peer's listen backlog still fails here: liveness
      // requires the ack, not the connection.
      Result<net::Socket> conn =
          net::TcpConnect(options.peers[peer], options.probe_io_timeout_ms);
      if (conn.ok()) {
        Status sent = net::WriteFrame(*conn, static_cast<uint8_t>(MsgType::kPsopProbe),
                                      probe_payload, options.probe_io_timeout_ms);
        if (sent.ok()) {
          Result<net::Frame> ack =
              net::ReadFrame(*conn, options.limits, options.probe_io_timeout_ms);
          if (ack.ok() && ack->type == static_cast<uint8_t>(MsgType::kPsopProbeAck)) {
            alive[peer] = true;
            continue;
          }
        }
      }
      undecided = true;
      // Answer inbound probes between outbound tries so peers probing each
      // other concurrently converge instead of starving one another.
      Result<std::pair<net::Socket, net::Frame>> drained =
          AwaitHello(options, attempt, /*deadline_ms=*/50, pending, /*drain_only=*/true);
      (void)drained;
    }
    if (!undecided || std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    Result<std::pair<net::Socket, net::Frame>> drained =
        AwaitHello(options, attempt, /*deadline_ms=*/100, pending, /*drain_only=*/true);
    (void)drained;
  }
  std::vector<uint32_t> members;
  for (uint32_t peer = 0; peer < static_cast<uint32_t>(k); ++peer) {
    if (alive[peer]) {
      members.push_back(peer);
    }
  }
  INDAAS_SLOG(Info, "pia.ring_probe_done")
      .Kv("self", static_cast<uint64_t>(self))
      .Kv("attempt", static_cast<uint64_t>(attempt))
      .Kv("alive", static_cast<uint64_t>(members.size()))
      .Kv("ring", static_cast<uint64_t>(k));
  return members;
}

Result<std::pair<net::Socket, net::Frame>> PiaPeer::AwaitHello(const PiaPeerOptions& options,
                                                               uint32_t attempt,
                                                               int deadline_ms,
                                                               PendingHello* pending,
                                                               bool drain_only) {
  const uint32_t self = static_cast<uint32_t>(options.self_index);
  // A hello is for *this* reformation if its membership extension carries
  // the current attempt; stale ones (from an aborted earlier reformation)
  // are dropped, pristine-ring hellos are validated by the caller.
  auto hello_is_current = [&](const net::Frame& frame) {
    if (attempt == 0) {
      return true;
    }
    return frame.ring.valid() && frame.ring.attempt == attempt;
  };
  if (!drain_only && pending->valid) {
    pending->valid = false;
    if (hello_is_current(pending->frame)) {
      return std::make_pair(std::move(pending->socket), std::move(pending->frame));
    }
    pending->socket = net::Socket();  // stale: drop the connection
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      break;
    }
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() + 1);
    Result<net::Socket> conn =
        net::TcpAccept(listener_, std::min(remaining, kAcceptSliceMs));
    if (!conn.ok()) {
      continue;  // timeout or transient accept failure; the deadline bounds us
    }
    Result<net::Frame> first =
        net::ReadFrame(*conn, options.limits, options.probe_io_timeout_ms);
    if (!first.ok()) {
      continue;  // stray or garbled connection; drop it
    }
    if (first->type == static_cast<uint8_t>(MsgType::kPsopProbe)) {
      // Answer and close: we are alive. The ack carries our index so the
      // prober can attribute it.
      Status acked = net::WriteFrame(*conn, static_cast<uint8_t>(MsgType::kPsopProbeAck),
                                     EncodePsopProbe(PsopProbe{self, attempt}),
                                     options.probe_io_timeout_ms);
      (void)acked;
      continue;
    }
    if (first->type == static_cast<uint8_t>(MsgType::kPsopHello)) {
      if (!hello_is_current(*first)) {
        continue;  // stale reformation attempt; drop
      }
      if (drain_only) {
        if (!pending->valid) {
          pending->socket = std::move(*conn);
          pending->frame = std::move(*first);
          pending->valid = true;
        }
        continue;
      }
      return std::make_pair(std::move(*conn), std::move(*first));
    }
    // Anything else is a stray connection; drop it.
  }
  if (drain_only) {
    return DeadlineExceededError("listener drain slice elapsed");
  }
  return DeadlineExceededError(StrFormat(
      "ring formation: predecessor hello did not arrive within %d ms", deadline_ms));
}

Result<PsopResult> PiaPeer::RunPsopWithSketch(const std::vector<std::string>& dataset,
                                              const PiaPeerOptions& options) {
  const size_t k = options.peers.size();
  const size_t self = options.self_index;
  if (k < 2) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: need at least two ring peers");
  }
  if (self >= k) {
    return InvalidArgumentError(StrFormat(
        "PiaPeer::RunPsopWithSketch: self_index %zu out of ring of %zu", self, k));
  }
  if (options.sketch_k == 0 || options.sketch_k > UINT16_MAX) {
    return InvalidArgumentError(StrFormat(
        "PiaPeer::RunPsopWithSketch: sketch_k %u out of range [1, %u]", options.sketch_k,
        UINT16_MAX));
  }
  if (options.lsh_bands > UINT16_MAX || options.lsh_rows > UINT16_MAX) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: LSH geometry exceeds u16");
  }
  if (dataset.empty()) {
    return InvalidArgumentError("PiaPeer::RunPsopWithSketch: empty dataset");
  }
  const size_t successor = (self + 1) % k;
  const size_t predecessor = (self + k - 1) % k;

  net::FrameSketchParams geometry;
  geometry.k = static_cast<uint16_t>(options.sketch_k);
  geometry.bands = static_cast<uint16_t>(options.lsh_bands);
  geometry.rows = static_cast<uint16_t>(options.lsh_rows);

  obs::TraceContext session{obs::DeriveTraceId(options.psop.seed), 0};
  obs::ScopedTraceContext session_trace(session);

  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop.sketch.socket");
  span.Annotate("ring_size", std::to_string(k));
  span.Annotate("self", std::to_string(self));

  INDAAS_ASSIGN_OR_RETURN(
      net::Socket tx, net::ConnectWithRetry(options.peers[successor],
                                            options.connect_timeout_ms, options.retry));
  INDAAS_ASSIGN_OR_RETURN(net::Socket rx, net::TcpAccept(listener_, options.io_timeout_ms));

  // --- Handshake: ring geometry plus the sketch-params extension. A peer
  // running the encrypted protocol (or an old build that predates the
  // extension) rejects the unknown flag bit before any registers move.
  PsopHello hello;
  hello.ring_size = static_cast<uint32_t>(k);
  hello.sender_index = static_cast<uint32_t>(self);
  hello.group_bits = static_cast<uint32_t>(options.psop.group_bits);
  hello.hash_algorithm = static_cast<uint8_t>(options.psop.hash);
  INDAAS_RETURN_IF_ERROR(net::WriteFrame(tx, static_cast<uint8_t>(MsgType::kPsopHello),
                                         EncodePsopHello(hello), options.io_timeout_ms,
                                         session, 0, geometry));
  INDAAS_ASSIGN_OR_RETURN(net::Frame hello_frame,
                          net::ReadFrame(rx, options.limits, options.io_timeout_ms));
  if (hello_frame.type != static_cast<uint8_t>(MsgType::kPsopHello)) {
    return ProtocolError("sketch ring handshake: first frame was not a hello");
  }
  INDAAS_ASSIGN_OR_RETURN(PsopHello peer_hello, DecodePsopHello(hello_frame.payload));
  if (peer_hello.ring_size != k || peer_hello.sender_index != predecessor) {
    return ProtocolError(StrFormat(
        "sketch ring handshake mismatch: predecessor claims index %u of %u, expected %zu of %zu",
        peer_hello.sender_index, peer_hello.ring_size, predecessor, k));
  }
  if (!hello_frame.sketch.valid()) {
    return ProtocolError("sketch ring handshake: predecessor sent no sketch-params extension");
  }
  if (hello_frame.sketch != geometry) {
    return ProtocolError(StrFormat(
        "sketch ring handshake mismatch: predecessor sketches k=%u bands=%u rows=%u, "
        "expected k=%u bands=%u rows=%u",
        hello_frame.sketch.k, hello_frame.sketch.bands, hello_frame.sketch.rows, geometry.k,
        geometry.bands, geometry.rows));
  }

  PsopResult result;
  result.party_stats.assign(k, PartyStats{});
  PartyMeter meter(&result.party_stats[self], "sketch");

  // --- Local sketching under the shared seed; nothing about the raw
  // dataset ever leaves this peer.
  sketch::SketchParams params;
  params.k = options.sketch_k;
  params.seed = PsopSketchSeed(options.psop.seed);
  sketch::SketchArena arena(options.sketch_k, k);
  {
    INDAAS_TRACE_SPAN("pia.psop.sketch.build");
    PartyComputeTimer timer(meter);
    sketch::BuildSketch(params, dataset, arena.At(self));
  }

  // --- Ring all-gather: k-1 lockstep hops; after hop h this peer holds the
  // sketch originated by (self - h - 1) mod k.
  std::vector<uint32_t> current(arena.At(self), arena.At(self) + options.sketch_k);
  size_t xseq = 0;
  {
    INDAAS_TRACE_SPAN("pia.psop.sketch.ring");
    for (size_t hop = 0; hop + 1 < k; ++hop) {
      INDAAS_TRACE_SPAN_NAMED(hop_span, "pia.ring.exchange");
      hop_span.Annotate("xseq", std::to_string(xseq++));
      hop_span.Annotate("self", std::to_string(self));
      uint32_t send_origin = static_cast<uint32_t>((self + k - hop) % k);
      uint32_t expect_origin = static_cast<uint32_t>((self + k - hop - 1) % k);
      PsopSketch out;
      out.origin = send_origin;
      out.registers = std::move(current);
      std::string out_bytes =
          FrameBytes(MsgType::kPsopSketch, EncodePsopSketch(out), session, geometry);
      meter.AddBytesSent(out_bytes.size());
      INDAAS_ASSIGN_OR_RETURN(
          net::Frame frame, ExchangeFrames(tx, out_bytes, rx, options.limits,
                                           options.io_timeout_ms));
      if (frame.type != static_cast<uint8_t>(MsgType::kPsopSketch)) {
        return ProtocolError(StrFormat("sketch ring round got frame type %u, want %u",
                                       frame.type,
                                       static_cast<uint8_t>(MsgType::kPsopSketch)));
      }
      size_t received = net::kFrameHeaderBytes + frame.payload.size() +
                        (frame.trace.valid() ? net::kTraceContextBytes : 0) +
                        (frame.sketch.valid() ? net::kSketchParamsBytes : 0);
      meter.AddBytesReceived(received);
      if (!frame.sketch.valid() || frame.sketch != geometry) {
        return ProtocolError("sketch ring round: peer changed sketch geometry mid-session");
      }
      INDAAS_ASSIGN_OR_RETURN(PsopSketch in, DecodePsopSketch(frame.payload));
      if (in.origin != expect_origin) {
        return ProtocolError(StrFormat("sketch ring round got sketch of origin %u, want %u",
                                       in.origin, expect_origin));
      }
      if (in.registers.size() != options.sketch_k) {
        return ProtocolError(StrFormat("sketch ring round got %zu registers, want %u",
                                       in.registers.size(), options.sketch_k));
      }
      std::copy(in.registers.begin(), in.registers.end(), arena.At(expect_origin));
      current = std::move(in.registers);
    }
  }

  // --- Count k-way register agreement; same estimator as the in-process
  // engine, so the two are byte-identical on identical datasets and seed.
  {
    PartyComputeTimer timer(meter);
    size_t agree = 0;
    for (uint32_t r = 0; r < options.sketch_k; ++r) {
      const uint32_t v = arena.At(0)[r];
      bool all = true;
      for (size_t i = 1; i < k && all; ++i) {
        all = arena.At(i)[r] == v;
      }
      agree += all;
    }
    result.intersection = agree;
    result.union_size = options.sketch_k;
    result.jaccard = static_cast<double>(agree) / static_cast<double>(options.sketch_k);
  }
  static obs::Counter* sketch_sessions =
      obs::MetricsRegistry::Global().GetCounter("pia.sketch_socket_sessions_total");
  sketch_sessions->Increment();
  return result;
}

}  // namespace svc
}  // namespace indaas
