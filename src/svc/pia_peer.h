// Socket-backed P-SOP: the protocol of src/pia/psop.h executed by k real
// peers over TCP instead of in-process message passing (paper §4.2, the way
// the prototype's cluster ran it).
//
// All peers share the ring configuration (ordered endpoint list plus the
// protocol parameters); each runs one PiaPeer. A peer listens on its own
// ring port, connects to its successor (retrying with backoff while the
// successor's listener comes up), accepts its predecessor and handshakes
// (ring size, index and crypto parameters are cross-checked before any
// data moves). Protocol rounds then pump frames in both directions through
// one poll loop — every peer sends to its successor while receiving from
// its predecessor, so ring rounds cannot deadlock on full TCP buffers no
// matter the dataset size.
//
// The intersection/union counts — and hence the Jaccard similarity — are
// byte-identical to RunPsop on the same datasets: commutative encryption
// makes the counts independent of key material and permutation order, which
// is exactly what makes the ring protocol correct in the first place.
//
// Failure semantics: a peer that disconnects mid-round fails the session
// with kUnavailable; a peer that stalls fails it with kDeadlineExceeded
// after io_timeout_ms. With `allow_degraded` off (the default) no partial
// result is returned either way.
//
// Degraded-mode recovery (`allow_degraded`, RunPsop only): on a transport
// fault every survivor closes both ring sockets — cascading the fault
// around the ring within one io timeout — then probes every original
// peer's listener (kPsopProbe/kPsopProbeAck over short-lived connections,
// answering incoming probes meanwhile) for up to probe_window_ms. The
// survivors that acked form the reformed ring, ordered by original index,
// and the protocol restarts from scratch: P-SOP is memoryless, so a clean
// re-run among m < k survivors is a correct m-party audit. Every frame of
// a reformed session carries the ring-membership frame extension (attempt
// + survivor bitmask); a peer whose membership view disagrees — or a
// pre-upgrade peer that never learned the flag bit — fails closed with
// kProtocolError instead of silently auditing with the wrong party set.
// The result is explicitly marked partial: PsopResult::excluded names the
// ejected original indices and recovery_attempts counts reformations.
// Recovery is bounded by max_recovery_attempts; a ring that cannot muster
// two live peers fails with a typed error, never a hang.

#ifndef SRC_SVC_PIA_PEER_H_
#define SRC_SVC_PIA_PEER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/net/frame.h"
#include "src/net/retry.h"
#include "src/net/socket.h"
#include "src/pia/psop.h"
#include "src/util/status.h"

namespace indaas {
namespace svc {

struct PiaPeerOptions {
  // The ring, in a fixed order every peer agrees on. peers[i] is where peer
  // i listens; peer i sends to peers[(i+1) % k].
  std::vector<net::Endpoint> peers;
  size_t self_index = 0;
  // Protocol parameters; hash/group_bits must match on every peer (the
  // handshake enforces it). The seed only has to be unique per peer — each
  // peer derives its key material from seed and self_index.
  PsopOptions psop;
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 10000;
  net::RetryPolicy retry;
  net::FrameLimits limits;
  // Sketch-exchange geometry (RunPsopWithSketch only): registers per sketch
  // plus the LSH banding the auditor will apply, advertised to — and
  // cross-checked against — every peer via the frame sketch-params
  // extension. bands/rows 0 = pairwise session with no banding.
  uint32_t sketch_k = 256;
  uint32_t lsh_bands = 0;
  uint32_t lsh_rows = 0;
  // Peer-failure recovery (RunPsop only; see the header comment). Off by
  // default: a fault fails the whole session, the pre-recovery behaviour.
  // Degraded rings are capped at 32 original parties (the membership
  // bitmask width).
  bool allow_degraded = false;
  // Ring reformations to attempt before giving up with the last error.
  uint32_t max_recovery_attempts = 2;
  // How long survivors probe the original peer set for liveness after a
  // fault. Peers that never ack within the window are ejected.
  int probe_window_ms = 3000;
  // Per-probe connect/write/ack budget; also bounds how long a stray
  // connection can stall ring formation.
  int probe_io_timeout_ms = 300;
  // Test seam: simulate sudden peer death by aborting the session (closing
  // both ring sockets, never answering again) just before ring exchange
  // number `fail_after_exchanges` (0-based). SIZE_MAX disables. The chaos
  // matrix uses this to kill one specific peer at a deterministic round.
  size_t fail_after_exchanges = SIZE_MAX;
};

// One party of a socket-backed PIA session. Listen() binds the ring port up
// front (so peers can start in any order); RunPsop() runs one full session.
class PiaPeer {
 public:
  // Binds the listening socket on `port` (0 picks a free port — query
  // listen_port(), used by tests to assemble loopback rings).
  static Result<PiaPeer> Listen(uint16_t port);

  uint16_t listen_port() const { return port_; }

  // Runs one P-SOP session over `dataset` (this peer's component multiset).
  // Every ring peer must call this with the same `options.peers`/psop
  // parameters and its own self_index/dataset. Returns the session result;
  // party_stats[self_index] carries this peer's measured costs (other
  // entries are zero — their owners measure them).
  Result<PsopResult> RunPsop(const std::vector<std::string>& dataset,
                             const PiaPeerOptions& options);

  // Runs one sketch-exchange session (PiaMethod::kSketch over sockets): each
  // peer sketches its dataset locally under the shared seed and the ring
  // all-gathers the fixed-size register arrays in k-1 hops — no encryption,
  // bytes independent of dataset size. Every frame carries the sketch-params
  // extension; a peer whose geometry disagrees (or that predates the
  // extension entirely) fails the session with kProtocolError. The Jaccard
  // estimate is byte-identical to RunPsopWithSketch on the same datasets.
  Result<PsopResult> RunPsopWithSketch(const std::vector<std::string>& dataset,
                                       const PiaPeerOptions& options);

 private:
  explicit PiaPeer(net::Socket listener, uint16_t port)
      : listener_(std::move(listener)), port_(port) {}

  // A predecessor connection whose hello arrived early (during the probe
  // phase, before this peer finished reforming).
  struct PendingHello {
    net::Socket socket;
    net::Frame frame;
    bool valid = false;
  };

  // One full protocol run over the surviving `members` (sorted original
  // indices). `attempt` 0 is the pristine ring (no membership extension on
  // the wire); attempts >= 1 stamp every frame with the membership
  // extension and cross-check it on every inbound frame.
  Result<PsopResult> RunPsopAttempt(const std::vector<std::string>& dataset,
                                    const PiaPeerOptions& options,
                                    const std::vector<uint32_t>& members, uint32_t attempt,
                                    PendingHello* pending);

  // Post-fault liveness probe: determines which original peers still
  // answer, collecting any early next-attempt hello into `pending`.
  Result<std::vector<uint32_t>> ProbeSurvivors(const PiaPeerOptions& options,
                                               uint32_t attempt, PendingHello* pending);

  // Accepts connections until the predecessor's hello arrives (answering
  // liveness probes meanwhile), or `deadline_ms` passes. With `drain_only`
  // the loop never consumes `pending` and never returns early — it just
  // answers probes for the whole slice, stashing at most one early hello
  // into `pending` (the probe phase runs it between outbound probes).
  Result<std::pair<net::Socket, net::Frame>> AwaitHello(const PiaPeerOptions& options,
                                                        uint32_t attempt, int deadline_ms,
                                                        PendingHello* pending,
                                                        bool drain_only = false);

  net::Socket listener_;
  uint16_t port_ = 0;
};

// Frame pump shared by ring protocols (exposed for tests): sends the
// already-framed `out_bytes` to `tx` while assembling one inbound frame
// from `rx`, multiplexing both directions through poll so neither side of
// a ring round can deadlock the other. `timeout_ms` bounds each wait for
// progress in either direction.
Result<net::Frame> ExchangeFrames(net::Socket& tx, std::string_view out_bytes,
                                  net::Socket& rx, const net::FrameLimits& limits,
                                  int timeout_ms);

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_PIA_PEER_H_
