// Socket-backed P-SOP: the protocol of src/pia/psop.h executed by k real
// peers over TCP instead of in-process message passing (paper §4.2, the way
// the prototype's cluster ran it).
//
// All peers share the ring configuration (ordered endpoint list plus the
// protocol parameters); each runs one PiaPeer. A peer listens on its own
// ring port, connects to its successor (retrying with backoff while the
// successor's listener comes up), accepts its predecessor and handshakes
// (ring size, index and crypto parameters are cross-checked before any
// data moves). Protocol rounds then pump frames in both directions through
// one poll loop — every peer sends to its successor while receiving from
// its predecessor, so ring rounds cannot deadlock on full TCP buffers no
// matter the dataset size.
//
// The intersection/union counts — and hence the Jaccard similarity — are
// byte-identical to RunPsop on the same datasets: commutative encryption
// makes the counts independent of key material and permutation order, which
// is exactly what makes the ring protocol correct in the first place.
//
// Failure semantics: a peer that disconnects mid-round fails the session
// with kUnavailable; a peer that stalls fails it with kDeadlineExceeded
// after io_timeout_ms. No partial result is returned either way.

#ifndef SRC_SVC_PIA_PEER_H_
#define SRC_SVC_PIA_PEER_H_

#include <string>
#include <vector>

#include "src/net/frame.h"
#include "src/net/retry.h"
#include "src/net/socket.h"
#include "src/pia/psop.h"
#include "src/util/status.h"

namespace indaas {
namespace svc {

struct PiaPeerOptions {
  // The ring, in a fixed order every peer agrees on. peers[i] is where peer
  // i listens; peer i sends to peers[(i+1) % k].
  std::vector<net::Endpoint> peers;
  size_t self_index = 0;
  // Protocol parameters; hash/group_bits must match on every peer (the
  // handshake enforces it). The seed only has to be unique per peer — each
  // peer derives its key material from seed and self_index.
  PsopOptions psop;
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 10000;
  net::RetryPolicy retry;
  net::FrameLimits limits;
  // Sketch-exchange geometry (RunPsopWithSketch only): registers per sketch
  // plus the LSH banding the auditor will apply, advertised to — and
  // cross-checked against — every peer via the frame sketch-params
  // extension. bands/rows 0 = pairwise session with no banding.
  uint32_t sketch_k = 256;
  uint32_t lsh_bands = 0;
  uint32_t lsh_rows = 0;
};

// One party of a socket-backed PIA session. Listen() binds the ring port up
// front (so peers can start in any order); RunPsop() runs one full session.
class PiaPeer {
 public:
  // Binds the listening socket on `port` (0 picks a free port — query
  // listen_port(), used by tests to assemble loopback rings).
  static Result<PiaPeer> Listen(uint16_t port);

  uint16_t listen_port() const { return port_; }

  // Runs one P-SOP session over `dataset` (this peer's component multiset).
  // Every ring peer must call this with the same `options.peers`/psop
  // parameters and its own self_index/dataset. Returns the session result;
  // party_stats[self_index] carries this peer's measured costs (other
  // entries are zero — their owners measure them).
  Result<PsopResult> RunPsop(const std::vector<std::string>& dataset,
                             const PiaPeerOptions& options);

  // Runs one sketch-exchange session (PiaMethod::kSketch over sockets): each
  // peer sketches its dataset locally under the shared seed and the ring
  // all-gathers the fixed-size register arrays in k-1 hops — no encryption,
  // bytes independent of dataset size. Every frame carries the sketch-params
  // extension; a peer whose geometry disagrees (or that predates the
  // extension entirely) fails the session with kProtocolError. The Jaccard
  // estimate is byte-identical to RunPsopWithSketch on the same datasets.
  Result<PsopResult> RunPsopWithSketch(const std::vector<std::string>& dataset,
                                       const PiaPeerOptions& options);

 private:
  explicit PiaPeer(net::Socket listener, uint16_t port)
      : listener_(std::move(listener)), port_(port) {}

  net::Socket listener_;
  uint16_t port_ = 0;
};

// Frame pump shared by ring protocols (exposed for tests): sends the
// already-framed `out_bytes` to `tx` while assembling one inbound frame
// from `rx`, multiplexing both directions through poll so neither side of
// a ring round can deadlock the other. `timeout_ms` bounds each wait for
// progress in either direction.
Result<net::Frame> ExchangeFrames(net::Socket& tx, std::string_view out_bytes,
                                  net::Socket& rx, const net::FrameLimits& limits,
                                  int timeout_ms);

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_PIA_PEER_H_
