#include "src/svc/mux_client.h"

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

// Reader poll slice: bounds how long Shutdown() waits on an idle connection.
constexpr int kReaderPollMs = 100;

obs::Histogram* MuxRpcSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.client.mux_rpc_seconds",
      {0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128, 0.0256, 0.0512,
       0.1024, 0.2048, 0.4096, 0.8192, 1.6384, 3.2768, 6.5536, 13.1072});
  return histogram;
}

obs::Counter* MuxReconnects() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.client.mux_reconnects");
  return counter;
}

obs::Counter* MuxReplays() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.client.mux_replays");
  return counter;
}

obs::Counter* MuxConnFailures() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.client.mux_conn_failures");
  return counter;
}

// ImportDepDb appends records server-side, so an ambiguous transport
// failure must surface rather than risk a double import; everything else
// the mux client issues is safe to replay.
bool IdempotentRequest(MsgType request) { return request != MsgType::kImportDepDb; }

}  // namespace

struct MuxAuditClient::Impl {
  struct Pending {
    MsgType request = MsgType::kPing;
    MsgType expected = MsgType::kPong;
    std::string payload;  // retained only while replays remain
    Completion done;
    WallTimer timer;
    size_t retries_left = 0;  // replays on a fresh connection after a transport fault
  };

  // One pooled connection: its socket, its reader thread, and the id-keyed
  // table of requests awaiting replies. Writers serialize on write_mu (a
  // frame must hit the wire atomically); everything else lives under mu.
  struct Conn {
    net::Socket socket;
    std::thread reader;
    std::mutex write_mu;
    std::mutex revive_mu;  // serializes in-place reconnection

    std::mutex mu;
    std::condition_variable window_cv;
    std::unordered_map<uint64_t, Pending> pending;
    uint64_t next_id = 1;
    bool stopping = false;
    Status failed = Status::Ok();  // sticky transport error once !ok
  };

  MuxClientOptions options;
  net::Endpoint endpoint;
  uint64_t trace_id = 0;
  std::vector<std::unique_ptr<Conn>> conns;
  std::atomic<size_t> next_conn{0};
  bool shut_down = false;

  // Readers that revived their own connection hand their old thread handle
  // here (a thread cannot join itself); Shutdown drains them.
  std::mutex retired_mu;
  std::vector<std::thread> retired;

  // Completes one request outside any lock (the callback may block).
  static void Complete(Pending pending, Result<net::Frame> result) {
    MuxRpcSeconds()->Record(pending.timer.ElapsedSeconds());
    pending.done(std::move(result));
  }

  // Marks the connection dead and fails every pending request with
  // `error`; orphans with replay budget are transparently re-issued on
  // another (or a revived) connection instead of surfacing the transport
  // error. Safe to call repeatedly; only the first error sticks.
  void FailConn(Conn* conn, const Status& error) {
    std::unordered_map<uint64_t, Pending> orphans;
    Status failure;
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->failed.ok()) {
        conn->failed = error;
        if (!conn->stopping) {
          MuxConnFailures()->Increment();
        }
      }
      failure = conn->failed;
      stopping = conn->stopping;
      orphans.swap(conn->pending);
      conn->window_cv.notify_all();
    }
    for (auto& [id, pending] : orphans) {
      if (!stopping && pending.retries_left > 0) {
        MuxReplays()->Increment();
        AsyncCallAttempt(pending.request, std::move(pending.payload), pending.expected,
                         std::move(pending.done), pending.retries_left - 1);
      } else {
        Complete(std::move(pending), failure);
      }
    }
  }

  // Replaces a dead pooled connection in place: fresh socket, fresh reader.
  // The server closing an idle pooled connection must not poison the slot
  // forever — the next request revives it transparently. A reader thread
  // retrying its own orphans lands here too; it cannot join itself, so its
  // old handle is parked in `retired` for Shutdown to drain.
  Status Revive(Conn* conn) {
    std::lock_guard<std::mutex> revive_lock(conn->revive_mu);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->stopping) {
        return UnavailableError("mux client shutting down");
      }
      if (conn->failed.ok()) {
        return Status::Ok();  // someone else already revived it
      }
    }
    if (conn->reader.joinable()) {
      if (conn->reader.get_id() == std::this_thread::get_id()) {
        std::lock_guard<std::mutex> retired_lock(retired_mu);
        retired.push_back(std::move(conn->reader));
      } else {
        conn->reader.join();
      }
    }
    size_t retries = 0;
    Result<net::Socket> socket =
        net::ConnectWithRetry(endpoint, options.connect_timeout_ms, options.retry, &retries);
    if (retries > 0) {
      obs::MetricsRegistry::Global().GetCounter("svc.client.connect_retries")->Add(retries);
    }
    if (!socket.ok()) {
      return socket.status();
    }
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->socket = std::move(*socket);
      conn->failed = Status::Ok();
    }
    Impl* self = this;
    conn->reader = std::thread([self, conn] { self->ReaderLoop(conn); });
    MuxReconnects()->Increment();
    INDAAS_SLOG(Info, "svc.client.mux_reconnect").Kv("endpoint", endpoint.ToString());
    return Status::Ok();
  }

  void ReaderLoop(Conn* conn) {
    while (true) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->stopping) {
          return;
        }
      }
      Status readable = conn->socket.WaitReadable(kReaderPollMs);
      if (readable.code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle slice; re-check stopping
      }
      if (!readable.ok()) {
        FailConn(conn, readable);
        return;
      }
      Result<net::Frame> frame =
          net::ReadFrame(conn->socket, options.limits, options.io_timeout_ms);
      if (!frame.ok()) {
        FailConn(conn, frame.status());
        return;
      }
      if (frame->request_id == 0) {
        // A reply with no id cannot be paired; the stream is unusable.
        FailConn(conn, ProtocolError("reply frame missing request id"));
        return;
      }
      Pending pending;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->pending.find(frame->request_id);
        if (it == conn->pending.end()) {
          // Unknown id: the server invented or repeated one. Drop the
          // connection rather than risk mis-pairing later replies.
          FailConn(conn, ProtocolError(StrFormat("reply for unknown request id %llu",
                                                 (unsigned long long)frame->request_id)));
          return;
        }
        pending = std::move(it->second);
        conn->pending.erase(it);
        conn->window_cv.notify_one();
      }
      if (frame->type == static_cast<uint8_t>(MsgType::kErrorReply)) {
        Complete(std::move(pending), DecodeErrorReply(frame->payload));
      } else if (frame->type != static_cast<uint8_t>(pending.expected)) {
        Complete(std::move(pending),
                 ProtocolError(StrFormat("unexpected reply type %u (want %u)", frame->type,
                                         static_cast<uint8_t>(pending.expected))));
      } else {
        Complete(std::move(pending), std::move(*frame));
      }
    }
  }

  void AsyncCall(MsgType request, std::string payload, MsgType expected, Completion done) {
    AsyncCallAttempt(request, std::move(payload), expected, std::move(done),
                     IdempotentRequest(request) ? 1 : 0);
  }

  void AsyncCallAttempt(MsgType request, std::string payload, MsgType expected,
                        Completion done, size_t retries_left) {
    Conn* conn =
        conns[next_conn.fetch_add(1, std::memory_order_relaxed) % conns.size()].get();
    // Transparent staleness recovery: a pooled connection the server closed
    // while this client was idle gets a fresh socket before anything is
    // queued on it, instead of poisoning every request routed to the slot.
    bool dead;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      dead = !conn->failed.ok() && !conn->stopping;
    }
    if (dead) {
      Status revived = Revive(conn);
      if (!revived.ok()) {
        Pending pending;
        pending.done = std::move(done);
        Complete(std::move(pending), revived);
        return;
      }
    }
    Pending pending;
    pending.request = request;
    pending.expected = expected;
    pending.done = std::move(done);
    pending.retries_left = retries_left;
    if (retries_left > 0) {
      pending.payload = payload;  // retained so a transport fault can replay
    }
    uint64_t id = 0;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->window_cv.wait(lock, [&] {
        return conn->stopping || !conn->failed.ok() ||
               conn->pending.size() < options.window;
      });
      if (conn->stopping) {
        lock.unlock();
        Complete(std::move(pending), UnavailableError("mux client shutting down"));
        return;
      }
      if (!conn->failed.ok()) {
        Status failed = conn->failed;
        lock.unlock();
        if (retries_left > 0) {
          MuxReplays()->Increment();
          AsyncCallAttempt(request, std::move(payload), expected, std::move(pending.done),
                           retries_left - 1);
          return;
        }
        Complete(std::move(pending), failed);
        return;
      }
      id = conn->next_id++;
      conn->pending.emplace(id, std::move(pending));
    }
    Status written;
    {
      // One writer at a time per connection: a frame interleaved with
      // another frame's bytes would corrupt the stream for everyone.
      std::lock_guard<std::mutex> write_lock(conn->write_mu);
      written = net::WriteFrame(conn->socket, static_cast<uint8_t>(request), payload,
                                options.io_timeout_ms, obs::TraceContext{trace_id, 0}, id);
    }
    if (!written.ok()) {
      // Reclaim our own entry if the reader has not already failed it.
      Pending orphan;
      bool owned = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->pending.find(id);
        if (it != conn->pending.end()) {
          orphan = std::move(it->second);
          conn->pending.erase(it);
          owned = true;
        }
      }
      FailConn(conn, written);  // fails (or retries) everything else queued here
      if (owned) {
        if (orphan.retries_left > 0) {
          MuxReplays()->Increment();
          AsyncCallAttempt(request, std::move(orphan.payload), expected,
                           std::move(orphan.done), orphan.retries_left - 1);
          return;
        }
        Complete(std::move(orphan), written);
      }
    }
  }

  void Shutdown() {
    if (shut_down) {
      return;
    }
    shut_down = true;
    for (auto& conn : conns) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->stopping = true;
        conn->window_cv.notify_all();
      }
    }
    for (auto& conn : conns) {
      if (conn->reader.joinable()) {
        conn->reader.join();
      }
      FailConn(conn.get(), UnavailableError("mux client shut down"));
      conn->socket.Close();
    }
    std::vector<std::thread> old;
    {
      std::lock_guard<std::mutex> retired_lock(retired_mu);
      old.swap(retired);
    }
    for (std::thread& thread : old) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
};

Result<MuxAuditClient> MuxAuditClient::Connect(const net::Endpoint& endpoint,
                                               const MuxClientOptions& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->options.connections = std::max<size_t>(1, options.connections);
  impl->options.window = std::max<size_t>(1, options.window);
  impl->endpoint = endpoint;
  obs::TraceContext ambient = obs::CurrentTraceContext();
  impl->trace_id = ambient.valid() ? ambient.trace_id : obs::NewTraceId();
  for (size_t i = 0; i < impl->options.connections; ++i) {
    size_t retries = 0;
    Result<net::Socket> socket =
        net::ConnectWithRetry(endpoint, options.connect_timeout_ms, options.retry, &retries);
    if (retries > 0) {
      obs::MetricsRegistry::Global().GetCounter("svc.client.connect_retries")->Add(retries);
    }
    if (!socket.ok()) {
      impl->Shutdown();  // joins the readers already started
      return socket.status();
    }
    auto conn = std::make_unique<Impl::Conn>();
    conn->socket = std::move(*socket);
    impl->conns.push_back(std::move(conn));
  }
  Impl* raw = impl.get();
  for (auto& conn : raw->conns) {
    Impl::Conn* raw_conn = conn.get();
    raw_conn->reader = std::thread([raw, raw_conn] { raw->ReaderLoop(raw_conn); });
  }
  return MuxAuditClient(std::move(impl));
}

MuxAuditClient::MuxAuditClient(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

MuxAuditClient::MuxAuditClient(MuxAuditClient&&) noexcept = default;
MuxAuditClient& MuxAuditClient::operator=(MuxAuditClient&&) noexcept = default;

MuxAuditClient::~MuxAuditClient() {
  if (impl_) {
    impl_->Shutdown();
  }
}

void MuxAuditClient::AsyncCall(MsgType request, std::string payload, MsgType expected,
                               Completion done) {
  impl_->AsyncCall(request, std::move(payload), expected, std::move(done));
}

Result<net::Frame> MuxAuditClient::Call(MsgType request, std::string payload,
                                        MsgType expected) {
  auto promise = std::make_shared<std::promise<Result<net::Frame>>>();
  std::future<Result<net::Frame>> future = promise->get_future();
  AsyncCall(request, std::move(payload), expected,
            [promise](Result<net::Frame> result) { promise->set_value(std::move(result)); });
  return future.get();
}

Status MuxAuditClient::Ping() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kPing, "", MsgType::kPong));
  if (!reply.payload.empty()) {
    return ProtocolError("pong carried unexpected payload");
  }
  return Status::Ok();
}

Result<ImportAck> MuxAuditClient::ImportDepDb(const std::string& table1_text) {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kImportDepDb, table1_text, MsgType::kImportAck));
  return DecodeImportAck(reply.payload);
}

Result<SiaAuditReport> MuxAuditClient::AuditStructural(const AuditSpecification& spec) {
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kAuditRequest, EncodeAuditSpecification(spec), MsgType::kAuditReport));
  return DecodeSiaAuditReport(reply.payload);
}

void MuxAuditClient::Shutdown() {
  if (impl_) {
    impl_->Shutdown();
  }
}

uint64_t MuxAuditClient::trace_id() const { return impl_->trace_id; }

}  // namespace svc
}  // namespace indaas
