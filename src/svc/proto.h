// INDaaS RPC message types and payload codecs (DESIGN.md §7).
//
// One frame (src/net/frame.h) carries one message; the frame's type byte is
// a MsgType and the payload is the matching codec's output built on the
// src/net/wire.h primitives. Decoders validate exhaustively — enum ranges,
// element counts, trailing bytes — so a hostile payload yields kParseError,
// never a malformed in-memory object.
//
// Request/response pairing:
//   kPing          -> kPong           (empty payloads)
//   kImportDepDb   -> kImportAck      (Table-1 text -> record counts)
//   kAuditRequest  -> kAuditReport    (AuditSpecification -> SiaAuditReport)
//   kPiaRequest    -> kPiaReport      (providers+options -> PiaAuditReport)
//   kGetStats      -> kStatsReply     (empty -> ServerStats snapshot)
//   kHealth        -> kHealthReply    (empty -> HealthStatus)
//   kGetDebugInfo  -> kDebugInfoReply (empty -> DebugInfo introspection)
//   kGetProfile    -> kProfileReply   (window spec -> profile dump text)
//   any request    -> kErrorReply     (Status code + message)
//
// The kPsop* types are the socket-backed P-SOP session messages exchanged
// between PiaPeers (src/svc/pia_peer.h), not server RPCs.

#ifndef SRC_SVC_PROTO_H_
#define SRC_SVC_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/agent/sia_audit.h"
#include "src/agent/spec.h"
#include "src/bignum/biguint.h"
#include "src/obs/metrics.h"
#include "src/pia/audit.h"
#include "src/util/status.h"

namespace indaas {
namespace svc {

enum class MsgType : uint8_t {
  kPing = 1,
  kPong = 2,
  kImportDepDb = 3,
  kImportAck = 4,
  kAuditRequest = 5,
  kAuditReport = 6,
  kPiaRequest = 7,
  kPiaReport = 8,
  kErrorReply = 9,
  kGetStats = 10,
  kStatsReply = 11,
  kHealth = 12,
  kHealthReply = 13,
  kGetDebugInfo = 14,
  kDebugInfoReply = 15,
  // PIA peer-to-peer session messages.
  kPsopHello = 16,
  kPsopDataset = 17,
  kPsopShare = 18,
  kPsopSketch = 19,
  // Ring-recovery liveness probe and its acknowledgement: after a ring
  // fault, each survivor probes every original peer's listener to agree on
  // who is still alive before reforming a degraded ring.
  kPsopProbe = 20,
  kPsopProbeAck = 21,
  // Remote profiling (src/obs/profiler.h): capture a sampling-profiler
  // window on the server and ship it back as dump text.
  kGetProfile = 22,
  kProfileReply = 23,
};

// Human-readable message-type name ("AuditRequest"), shared by server logs,
// per-RPC metric names, and the stats renderer. Unknown values map to
// "Unknown".
const char* MsgTypeName(MsgType type);

// --- Error reply ---

std::string EncodeErrorReply(const Status& status);
// Reconstructs the remote Status (best effort: unknown codes map to
// kInternal).
Status DecodeErrorReply(std::string_view payload);

// --- DepDb import ---

struct ImportAck {
  uint64_t network = 0;
  uint64_t hardware = 0;
  uint64_t software = 0;
};

std::string EncodeImportAck(const ImportAck& ack);
Result<ImportAck> DecodeImportAck(std::string_view payload);

// --- Structural audit ---

std::string EncodeAuditSpecification(const AuditSpecification& spec);
Result<AuditSpecification> DecodeAuditSpecification(std::string_view payload);

std::string EncodeSiaAuditReport(const SiaAuditReport& report);
Result<SiaAuditReport> DecodeSiaAuditReport(std::string_view payload);

// --- Private audit ---

struct PiaRequest {
  std::vector<CloudProvider> providers;
  PiaAuditOptions options;
};

std::string EncodePiaRequest(const PiaRequest& request);
Result<PiaRequest> DecodePiaRequest(std::string_view payload);

std::string EncodePiaAuditReport(const PiaAuditReport& report);
Result<PiaAuditReport> DecodePiaAuditReport(std::string_view payload);

// --- Stats and health ---

// A scrape of the serving process, answered to kGetStats. Carries the full
// MetricsSnapshot (counters, gauges, per-RPC latency histograms, bytes
// in/out, active connections) plus fields the registry does not own.
struct ServerStats {
  uint64_t uptime_us = 0;        // microseconds since the server started
  uint64_t depdb_records = 0;    // dependency records currently loaded
  obs::MetricsSnapshot metrics;
};

std::string EncodeServerStats(const ServerStats& stats);
Result<ServerStats> DecodeServerStats(std::string_view payload);

// Liveness/readiness answer to kHealth. `serving` flips to false when the
// server begins draining, before the listener closes.
struct HealthStatus {
  bool serving = false;
  uint64_t uptime_us = 0;
};

std::string EncodeHealthStatus(const HealthStatus& status);
Result<HealthStatus> DecodeHealthStatus(std::string_view payload);

// --- Debug introspection (kGetDebugInfo -> kDebugInfoReply) ---

// One reactor shard, as seen at gather time.
struct DebugShard {
  uint32_t index = 0;
  uint64_t connections = 0;   // open connections owned by this shard
  uint64_t inflight = 0;      // requests admitted but not yet replied
  bool has_listener = false;  // still accepting (false once draining)
};

// One open connection (reactor mode only; threaded mode reports none).
struct DebugConnection {
  uint64_t id = 0;
  uint32_t shard = 0;
  uint64_t age_us = 0;                // since accept
  uint64_t in_buffer_bytes = 0;       // partially-read frame bytes
  uint64_t write_buffer_bytes = 0;    // reply bytes not yet on the wire
  uint64_t inflight = 0;              // requests admitted on this connection
  uint64_t oldest_pending_us = 0;     // age of the oldest unanswered request
};

// A flight-recorder event on the wire (mirror of obs::FlightEvent).
struct DebugFlightEvent {
  uint64_t t_us = 0;
  uint64_t trace_id = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t tid = 0;
  uint16_t type = 0;  // obs::FlightEventType
  uint16_t code = 0;
};

// One tail-sampled RPC with its stage breakdown (mirror of obs::TailSample;
// stage order follows obs::RpcStage).
struct DebugSlowRpc {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint16_t rpc_type = 0;
  uint8_t outcome = 0;  // obs::TailOutcome
  bool ok = false;
  uint64_t conn_id = 0;
  uint64_t end_us = 0;
  double total_s = 0;
  double stage_s[6] = {};  // obs::kRpcStageCount
};

// Everything `indaas debug --remote` renders: per-shard and per-connection
// introspection, recent flight-recorder events, and the slowest retained
// RPCs. Collected live by fanning a gather across reactor shards.
struct DebugInfo {
  uint64_t uptime_us = 0;
  uint8_t mode = 0;            // ServerMode as its underlying value
  uint32_t reactor_shards = 0;
  uint64_t inflight_global = 0;
  std::vector<DebugShard> shards;
  std::vector<DebugConnection> connections;
  std::vector<DebugFlightEvent> events;
  std::vector<DebugSlowRpc> slowest;
};

std::string EncodeDebugInfo(const DebugInfo& info);
Result<DebugInfo> DecodeDebugInfo(std::string_view payload);

// --- Remote profiling (kGetProfile -> kProfileReply) ---

// Hard caps a server enforces before honoring a profile request: a hostile
// or misconfigured client must not be able to pin a server in SIGPROF
// storms or hour-long captures.
constexpr uint32_t kMaxProfileHz = 1000;
constexpr uint32_t kMaxProfileSeconds = 60;
// A dump is bounded by the profiler's session cap (~1M samples × ~48
// frames × ~19 bytes/frame would be huge, but real windows are seconds
// long); 64 MiB leaves lots of headroom while still bounding a hostile
// reply.
constexpr uint32_t kMaxProfileDumpBytes = 64u << 20;

// One profile window: sample the server's registered threads at `hz` for
// `seconds`, optionally with allocation attribution. When the server is
// already profiling continuously (`indaas serve --profile-hz`), `hz` is
// advisory — the window is cut from the running session at its frequency.
struct ProfileRequest {
  uint32_t hz = 99;       // [1, kMaxProfileHz]
  uint32_t seconds = 5;   // [1, kMaxProfileSeconds]
  bool alloc = true;      // also sample allocations
};

std::string EncodeProfileRequest(const ProfileRequest& request);
Result<ProfileRequest> DecodeProfileRequest(std::string_view payload);

// The captured window as self-describing dump text (obs::ProfileToDumpText:
// exe path + PIE base + hz + window + trace ids + one line per sample).
// Text rather than a binary mirror of ProfileData: the dump is the exact
// artifact tools/symbolize_profile.py and operators consume, so the wire
// ships it verbatim.
struct ProfileReply {
  std::string dump;
};

std::string EncodeProfileReply(const ProfileReply& reply);
Result<ProfileReply> DecodeProfileReply(std::string_view payload);

// --- P-SOP session payloads ---

// Ring handshake: every peer sends this to its successor before any data so
// misconfigured rings (mismatched size, index, or crypto parameters) fail
// fast with a clear error instead of corrupting a session.
struct PsopHello {
  uint32_t ring_size = 0;
  uint32_t sender_index = 0;
  uint32_t group_bits = 0;
  uint8_t hash_algorithm = 0;  // HashAlgorithm as its underlying value
};

std::string EncodePsopHello(const PsopHello& hello);
Result<PsopHello> DecodePsopHello(std::string_view payload);

// A dataset in transit around the ring: fixed-width big-endian group
// elements. `origin` identifies which peer's dataset this is.
struct PsopDataset {
  uint32_t origin = 0;
  uint32_t element_bytes = 0;
  std::vector<BigUint> elements;
};

std::string EncodePsopDataset(const PsopDataset& dataset);
Result<PsopDataset> DecodePsopDataset(std::string_view payload);

// A MinHash sketch in transit around the ring during a sketch-exchange
// session (PiaMethod::kSketch): the originating peer's fixed-width register
// array. Frames carrying this payload also set the sketch-params frame
// extension, which is where the geometry cross-check happens.
struct PsopSketch {
  uint32_t origin = 0;
  std::vector<uint32_t> registers;
};

std::string EncodePsopSketch(const PsopSketch& sketch);
Result<PsopSketch> DecodePsopSketch(std::string_view payload);

// Ring-recovery liveness probe (kPsopProbe) and acknowledgement
// (kPsopProbeAck) — both carry this payload. `sender_index` is the sender's
// *original* ring index; `attempt` is the reformation the prober is trying
// to assemble (first recovery = 1). A probe costs one short-lived
// connection: connect, probe, ack, close.
struct PsopProbe {
  uint32_t sender_index = 0;
  uint32_t attempt = 0;
};

std::string EncodePsopProbe(const PsopProbe& probe);
Result<PsopProbe> DecodePsopProbe(std::string_view payload);

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_PROTO_H_
