#include "src/svc/client.h"

#include <chrono>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

obs::Histogram* ClientRpcSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.client.rpc_seconds",
      {0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128, 0.0256, 0.0512,
       0.1024, 0.2048, 0.4096, 0.8192, 1.6384, 3.2768, 6.5536, 13.1072});
  return histogram;
}

obs::Counter* ClientRpcReplays() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("svc.client.rpc_replays");
  return counter;
}

// ImportDepDb appends records server-side; replaying it after an ambiguous
// transport failure could double-import. GetProfile blocks the server for a
// full capture window, so a replay would silently double the caller's wait
// (and, in temporary-session mode, race the still-running first capture).
// Everything else is a pure read or a liveness check.
bool IdempotentRequest(MsgType request) {
  return request != MsgType::kImportDepDb && request != MsgType::kGetProfile;
}

}  // namespace

AuditClient::AuditClient(net::Socket socket, net::Endpoint endpoint, AuditClientOptions options,
                         uint64_t trace_id)
    : socket_(std::move(socket)),
      endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      trace_id_(trace_id) {}

Result<AuditClient> AuditClient::Connect(const net::Endpoint& endpoint,
                                         const AuditClientOptions& options) {
  size_t retries = 0;
  Result<net::Socket> socket =
      net::ConnectWithRetry(endpoint, options.connect_timeout_ms, options.retry, &retries);
  if (retries > 0) {
    // Attribute retries to this client on top of the process-wide
    // net.connect_retries the retry layer already counts.
    obs::MetricsRegistry::Global().GetCounter("svc.client.connect_retries")->Add(retries);
  }
  INDAAS_RETURN_IF_ERROR(socket.status());
  // Join the calling thread's trace if one is installed (e.g. the CLI put
  // the whole run under one trace); otherwise this client starts its own.
  obs::TraceContext ambient = obs::CurrentTraceContext();
  uint64_t trace_id = ambient.valid() ? ambient.trace_id : obs::NewTraceId();
  return AuditClient(std::move(*socket), endpoint, options, trace_id);
}

Result<net::Frame> AuditClient::Call(MsgType request, std::string_view payload,
                                     MsgType expected, int io_timeout_ms) {
  if (io_timeout_ms <= 0) {
    io_timeout_ms = options_.io_timeout_ms;
  }
  const size_t max_attempts =
      IdempotentRequest(request) ? std::max<size_t>(1, options_.rpc_attempts) : 1;
  for (size_t attempt = 0;; ++attempt) {
    bool transport_failure = false;
    Result<net::Frame> result =
        CallOnce(request, payload, expected, io_timeout_ms, &transport_failure);
    if (result.ok() || !transport_failure || attempt + 1 >= max_attempts) {
      return result;
    }
    // Budgeted reconnect-and-replay: the request never reached a decision
    // we could observe, and it is idempotent, so re-running it is safe.
    // The backoff schedule (jitter included) is the shared net/retry one.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(net::BackoffSeconds(options_.retry, attempt)));
    size_t retries = 0;
    Result<net::Socket> fresh = net::ConnectWithRetry(endpoint_, options_.connect_timeout_ms,
                                                      options_.retry, &retries);
    if (retries > 0) {
      obs::MetricsRegistry::Global().GetCounter("svc.client.connect_retries")->Add(retries);
    }
    if (!fresh.ok()) {
      return result;  // the original failure is the more useful error
    }
    socket_ = std::move(*fresh);
    ClientRpcReplays()->Increment();
    INDAAS_SLOG(Info, "svc.client.rpc_replay")
        .Kv("type", MsgTypeName(request))
        .Kv("attempt", static_cast<uint64_t>(attempt + 1))
        .Kv("error", result.status().ToString());
  }
}

Result<net::Frame> AuditClient::CallOnce(MsgType request, std::string_view payload,
                                         MsgType expected, int io_timeout_ms,
                                         bool* transport_failure) {
  *transport_failure = false;
  // The RPC span must carry this client's trace id even when the calling
  // thread has no ambient context (a bare CLI client): reinstall the id,
  // keeping any ambient remote parent only if it belongs to the same trace.
  obs::TraceContext ambient = obs::CurrentTraceContext();
  obs::ScopedTraceContext rpc_context(obs::TraceContext{
      trace_id_, ambient.trace_id == trace_id_ ? ambient.parent_span_id : 0});
  INDAAS_TRACE_SPAN_NAMED(span, "svc.client.rpc");
  span.Annotate("type", MsgTypeName(request));
  WallTimer timer;
  // Propagate this client's trace and this span as the remote parent; with
  // tracing disabled the span id is -1 and the wire parent is 0, but the
  // trace id still flows so server metrics stay attributable.
  obs::TraceContext trace{trace_id_, obs::WireSpanId(span.span_id())};
  auto finish = [&](Result<net::Frame> result) {
    ClientRpcSeconds()->Record(timer.ElapsedSeconds());
    if (!result.ok()) {
      span.Annotate("error", result.status().ToString());
    }
    return result;
  };
  if (Status s = net::WriteFrame(socket_, static_cast<uint8_t>(request), payload,
                                 io_timeout_ms, trace);
      !s.ok()) {
    *transport_failure = true;
    return finish(s);
  }
  Result<net::Frame> reply = net::ReadFrame(socket_, options_.limits, io_timeout_ms);
  if (!reply.ok()) {
    // A failed read is replayable only when nothing of the reply arrived in
    // a decodable way — ReadFrame folds both cases into its status; treat
    // socket-level errors as transport, protocol ones as final.
    *transport_failure = reply.status().code() != StatusCode::kProtocolError;
    return finish(std::move(reply));
  }
  if (reply->type == static_cast<uint8_t>(MsgType::kErrorReply)) {
    return finish(DecodeErrorReply(reply->payload));
  }
  if (reply->type != static_cast<uint8_t>(expected)) {
    return finish(ProtocolError(StrFormat("unexpected reply type %u (want %u)", reply->type,
                                          static_cast<uint8_t>(expected))));
  }
  return finish(std::move(reply));
}

Status AuditClient::Ping() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kPing, "", MsgType::kPong));
  if (!reply.payload.empty()) {
    return ProtocolError("pong carried unexpected payload");
  }
  return Status::Ok();
}

Result<ImportAck> AuditClient::ImportDepDb(const std::string& table1_text) {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kImportDepDb, table1_text, MsgType::kImportAck));
  return DecodeImportAck(reply.payload);
}

Result<SiaAuditReport> AuditClient::AuditStructural(const AuditSpecification& spec) {
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kAuditRequest, EncodeAuditSpecification(spec), MsgType::kAuditReport));
  return DecodeSiaAuditReport(reply.payload);
}

Result<PiaAuditReport> AuditClient::AuditPia(const std::vector<CloudProvider>& providers,
                                             const PiaAuditOptions& options) {
  PiaRequest request;
  request.providers = providers;
  request.options = options;
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kPiaRequest, EncodePiaRequest(request), MsgType::kPiaReport));
  return DecodePiaAuditReport(reply.payload);
}

Result<ServerStats> AuditClient::GetStats() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kGetStats, "", MsgType::kStatsReply));
  return DecodeServerStats(reply.payload);
}

Result<HealthStatus> AuditClient::Health() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kHealth, "", MsgType::kHealthReply));
  return DecodeHealthStatus(reply.payload);
}

Result<DebugInfo> AuditClient::GetDebugInfo() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kGetDebugInfo, "", MsgType::kDebugInfoReply));
  return DecodeDebugInfo(reply.payload);
}

Result<ProfileReply> AuditClient::GetProfile(const ProfileRequest& request) {
  // The server blocks for the whole capture window before answering, so the
  // read deadline must cover the window on top of the normal I/O budget.
  const int io_timeout_ms =
      options_.io_timeout_ms + static_cast<int>(request.seconds) * 1000;
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kGetProfile, EncodeProfileRequest(request),
                               MsgType::kProfileReply, io_timeout_ms));
  return DecodeProfileReply(reply.payload);
}

}  // namespace svc
}  // namespace indaas
