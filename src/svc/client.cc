#include "src/svc/client.h"

#include "src/util/strings.h"

namespace indaas {
namespace svc {

AuditClient::AuditClient(net::Socket socket, AuditClientOptions options)
    : socket_(std::move(socket)), options_(std::move(options)) {}

Result<AuditClient> AuditClient::Connect(const net::Endpoint& endpoint,
                                         const AuditClientOptions& options) {
  INDAAS_ASSIGN_OR_RETURN(
      net::Socket socket,
      net::ConnectWithRetry(endpoint, options.connect_timeout_ms, options.retry));
  return AuditClient(std::move(socket), options);
}

Result<net::Frame> AuditClient::Call(MsgType request, std::string_view payload,
                                     MsgType expected) {
  INDAAS_RETURN_IF_ERROR(net::WriteFrame(socket_, static_cast<uint8_t>(request), payload,
                                         options_.io_timeout_ms));
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          net::ReadFrame(socket_, options_.limits, options_.io_timeout_ms));
  if (reply.type == static_cast<uint8_t>(MsgType::kErrorReply)) {
    return DecodeErrorReply(reply.payload);
  }
  if (reply.type != static_cast<uint8_t>(expected)) {
    return ProtocolError(StrFormat("unexpected reply type %u (want %u)", reply.type,
                                   static_cast<uint8_t>(expected)));
  }
  return reply;
}

Status AuditClient::Ping() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kPing, "", MsgType::kPong));
  if (!reply.payload.empty()) {
    return ProtocolError("pong carried unexpected payload");
  }
  return Status::Ok();
}

Result<ImportAck> AuditClient::ImportDepDb(const std::string& table1_text) {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kImportDepDb, table1_text, MsgType::kImportAck));
  return DecodeImportAck(reply.payload);
}

Result<SiaAuditReport> AuditClient::AuditStructural(const AuditSpecification& spec) {
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kAuditRequest, EncodeAuditSpecification(spec), MsgType::kAuditReport));
  return DecodeSiaAuditReport(reply.payload);
}

Result<PiaAuditReport> AuditClient::AuditPia(const std::vector<CloudProvider>& providers,
                                             const PiaAuditOptions& options) {
  PiaRequest request;
  request.providers = providers;
  request.options = options;
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kPiaRequest, EncodePiaRequest(request), MsgType::kPiaReport));
  return DecodePiaAuditReport(reply.payload);
}

}  // namespace svc
}  // namespace indaas
