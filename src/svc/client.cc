#include "src/svc/client.h"

#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"
#include "src/util/strings.h"
#include "src/util/timer.h"

namespace indaas {
namespace svc {
namespace {

obs::Histogram* ClientRpcSeconds() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "svc.client.rpc_seconds",
      {0.0001, 0.0002, 0.0004, 0.0008, 0.0016, 0.0032, 0.0064, 0.0128, 0.0256, 0.0512,
       0.1024, 0.2048, 0.4096, 0.8192, 1.6384, 3.2768, 6.5536, 13.1072});
  return histogram;
}

}  // namespace

AuditClient::AuditClient(net::Socket socket, AuditClientOptions options, uint64_t trace_id)
    : socket_(std::move(socket)), options_(std::move(options)), trace_id_(trace_id) {}

Result<AuditClient> AuditClient::Connect(const net::Endpoint& endpoint,
                                         const AuditClientOptions& options) {
  size_t retries = 0;
  Result<net::Socket> socket =
      net::ConnectWithRetry(endpoint, options.connect_timeout_ms, options.retry, &retries);
  if (retries > 0) {
    // Attribute retries to this client on top of the process-wide
    // net.connect_retries the retry layer already counts.
    obs::MetricsRegistry::Global().GetCounter("svc.client.connect_retries")->Add(retries);
  }
  INDAAS_RETURN_IF_ERROR(socket.status());
  // Join the calling thread's trace if one is installed (e.g. the CLI put
  // the whole run under one trace); otherwise this client starts its own.
  obs::TraceContext ambient = obs::CurrentTraceContext();
  uint64_t trace_id = ambient.valid() ? ambient.trace_id : obs::NewTraceId();
  return AuditClient(std::move(*socket), options, trace_id);
}

Result<net::Frame> AuditClient::Call(MsgType request, std::string_view payload,
                                     MsgType expected) {
  // The RPC span must carry this client's trace id even when the calling
  // thread has no ambient context (a bare CLI client): reinstall the id,
  // keeping any ambient remote parent only if it belongs to the same trace.
  obs::TraceContext ambient = obs::CurrentTraceContext();
  obs::ScopedTraceContext rpc_context(obs::TraceContext{
      trace_id_, ambient.trace_id == trace_id_ ? ambient.parent_span_id : 0});
  INDAAS_TRACE_SPAN_NAMED(span, "svc.client.rpc");
  span.Annotate("type", MsgTypeName(request));
  WallTimer timer;
  // Propagate this client's trace and this span as the remote parent; with
  // tracing disabled the span id is -1 and the wire parent is 0, but the
  // trace id still flows so server metrics stay attributable.
  obs::TraceContext trace{trace_id_, obs::WireSpanId(span.span_id())};
  auto finish = [&](Result<net::Frame> result) {
    ClientRpcSeconds()->Record(timer.ElapsedSeconds());
    if (!result.ok()) {
      span.Annotate("error", result.status().ToString());
    }
    return result;
  };
  if (Status s = net::WriteFrame(socket_, static_cast<uint8_t>(request), payload,
                                 options_.io_timeout_ms, trace);
      !s.ok()) {
    return finish(s);
  }
  Result<net::Frame> reply = net::ReadFrame(socket_, options_.limits, options_.io_timeout_ms);
  if (!reply.ok()) {
    return finish(std::move(reply));
  }
  if (reply->type == static_cast<uint8_t>(MsgType::kErrorReply)) {
    return finish(DecodeErrorReply(reply->payload));
  }
  if (reply->type != static_cast<uint8_t>(expected)) {
    return finish(ProtocolError(StrFormat("unexpected reply type %u (want %u)", reply->type,
                                          static_cast<uint8_t>(expected))));
  }
  return finish(std::move(reply));
}

Status AuditClient::Ping() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kPing, "", MsgType::kPong));
  if (!reply.payload.empty()) {
    return ProtocolError("pong carried unexpected payload");
  }
  return Status::Ok();
}

Result<ImportAck> AuditClient::ImportDepDb(const std::string& table1_text) {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kImportDepDb, table1_text, MsgType::kImportAck));
  return DecodeImportAck(reply.payload);
}

Result<SiaAuditReport> AuditClient::AuditStructural(const AuditSpecification& spec) {
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kAuditRequest, EncodeAuditSpecification(spec), MsgType::kAuditReport));
  return DecodeSiaAuditReport(reply.payload);
}

Result<PiaAuditReport> AuditClient::AuditPia(const std::vector<CloudProvider>& providers,
                                             const PiaAuditOptions& options) {
  PiaRequest request;
  request.providers = providers;
  request.options = options;
  INDAAS_ASSIGN_OR_RETURN(
      net::Frame reply,
      Call(MsgType::kPiaRequest, EncodePiaRequest(request), MsgType::kPiaReport));
  return DecodePiaAuditReport(reply.payload);
}

Result<ServerStats> AuditClient::GetStats() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kGetStats, "", MsgType::kStatsReply));
  return DecodeServerStats(reply.payload);
}

Result<HealthStatus> AuditClient::Health() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply, Call(MsgType::kHealth, "", MsgType::kHealthReply));
  return DecodeHealthStatus(reply.payload);
}

Result<DebugInfo> AuditClient::GetDebugInfo() {
  INDAAS_ASSIGN_OR_RETURN(net::Frame reply,
                          Call(MsgType::kGetDebugInfo, "", MsgType::kDebugInfoReply));
  return DecodeDebugInfo(reply.payload);
}

}  // namespace svc
}  // namespace indaas
