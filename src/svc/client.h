// Client side of the INDaaS audit service: connects to an AuditServer
// (retrying with exponential backoff while the server comes up), ships
// DepDB records, and drives remote structural / private audits. One client
// holds one connection and issues requests serially; use one client per
// thread for concurrency.
//
// Observability: every Call() opens a "svc.client.rpc" span, propagates the
// client's trace context in the frame's trace extension (src/obs/propagate.h)
// so server-side spans join the same trace, and records request wall time in
// the client-side `svc.client.rpc_seconds` histogram — the server-only
// timing blind spot is closed from both ends. Connect retries are counted
// per client in `svc.client.connect_retries` on top of the net-layer total.

#ifndef SRC_SVC_CLIENT_H_
#define SRC_SVC_CLIENT_H_

#include <string>
#include <vector>

#include "src/agent/sia_audit.h"
#include "src/agent/spec.h"
#include "src/net/frame.h"
#include "src/net/retry.h"
#include "src/net/socket.h"
#include "src/pia/audit.h"
#include "src/svc/proto.h"
#include "src/util/status.h"

namespace indaas {
namespace svc {

struct AuditClientOptions {
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 30000;  // audits on large DepDBs take real time
  net::RetryPolicy retry;
  net::FrameLimits limits;
  // Reconnect-and-replay budget for *idempotent* RPCs (everything except
  // ImportDepDb, which mutates the DepDB): total tries per Call, including
  // the first. A transport failure — connection reset, peer closed, io
  // timeout — reconnects with the `retry` backoff schedule and replays the
  // request; a decoded remote error (kErrorReply) is never replayed, it is
  // the server's answer. 1 disables replay entirely.
  size_t rpc_attempts = 2;
};

class AuditClient {
 public:
  // Connects (with retry/backoff for a server that is still starting).
  static Result<AuditClient> Connect(const net::Endpoint& endpoint,
                                     const AuditClientOptions& options = {});

  // Round-trip liveness check.
  Status Ping();

  // Imports Table-1 formatted DepDB text into the server's database;
  // returns the server's post-import record counts.
  Result<ImportAck> ImportDepDb(const std::string& table1_text);

  // Runs a structural audit on the server's DepDB.
  Result<SiaAuditReport> AuditStructural(const AuditSpecification& spec);

  // Runs a private audit over the given provider sets on the server.
  Result<PiaAuditReport> AuditPia(const std::vector<CloudProvider>& providers,
                                  const PiaAuditOptions& options = {});

  // Fetches the server's metrics snapshot (counters, gauges, per-RPC
  // latency histograms) plus uptime and DepDB size.
  Result<ServerStats> GetStats();

  // Asks whether the server is serving (false once it begins draining).
  Result<HealthStatus> Health();

  // Fetches live introspection for `indaas debug`: per-shard and
  // per-connection state, recent flight-recorder events, slowest RPCs with
  // their stage breakdowns. Answered even while the server is shedding load
  // (the reactor intercepts it ahead of admission control).
  Result<DebugInfo> GetDebugInfo();

  // Captures a remote profile window (`indaas profile --remote`): the
  // server samples its registered threads for request.seconds and replies
  // with the self-describing dump text (obs::ProfileToDumpText). Blocks for
  // the whole window — the read deadline is stretched to cover it.
  Result<ProfileReply> GetProfile(const ProfileRequest& request);

  // The trace id this client stamps on every request: the calling thread's
  // context at Connect() time if one was installed, else freshly minted.
  uint64_t trace_id() const { return trace_id_; }

 private:
  AuditClient(net::Socket socket, net::Endpoint endpoint, AuditClientOptions options,
              uint64_t trace_id);

  // Sends one request frame and reads the reply, unwrapping kErrorReply
  // into its remote Status. Idempotent requests that die on a transport
  // fault reconnect and replay within options_.rpc_attempts.
  // `io_timeout_ms` of 0 uses options_.io_timeout_ms; GetProfile passes a
  // stretched deadline covering its server-side capture window.
  Result<net::Frame> Call(MsgType request, std::string_view payload, MsgType expected,
                          int io_timeout_ms = 0);

  // One attempt on the current connection. `transport_failure` is set when
  // the error came from the socket (replayable) rather than from the server
  // (a decoded kErrorReply or a malformed reply stream).
  Result<net::Frame> CallOnce(MsgType request, std::string_view payload, MsgType expected,
                              int io_timeout_ms, bool* transport_failure);

  net::Socket socket_;
  net::Endpoint endpoint_;
  AuditClientOptions options_;
  uint64_t trace_id_ = 0;
};

}  // namespace svc
}  // namespace indaas

#endif  // SRC_SVC_CLIENT_H_
