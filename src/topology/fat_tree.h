// Three-stage fat-tree generator (paper §6.3.1, Table 3).
//
// A k-port fat tree (PortLand-style) has k pods; each pod holds k/2 ToR and
// k/2 aggregation switches; each ToR serves k/2 servers; (k/2)^2 core
// routers connect the pods. Table 3's topologies A/B/C are k = 16, 24, 48.

#ifndef SRC_TOPOLOGY_FAT_TREE_H_
#define SRC_TOPOLOGY_FAT_TREE_H_

#include <cstdint>

#include "src/topology/datacenter.h"
#include "src/util/status.h"

namespace indaas {

struct FatTreeStats {
  uint32_t ports = 0;
  size_t core_routers = 0;
  size_t agg_switches = 0;
  size_t tor_switches = 0;
  size_t servers = 0;
  // Total devices (cores + aggs + ToRs + servers), matching Table 3's rows.
  size_t TotalDevices() const { return core_routers + agg_switches + tor_switches + servers; }
};

// Expected device counts for a k-port fat tree (Table 3 formulae).
FatTreeStats FatTreeStatsFor(uint32_t ports);

// Builds the full topology, including a single "Internet" sink connected to
// every core router. `ports` must be even and >= 4.
// Device naming: core<i>, pod<p>-agg<j>, pod<p>-tor<j>, pod<p>-srv<t>-<s>.
Result<DataCenterTopology> BuildFatTree(uint32_t ports);

}  // namespace indaas

#endif  // SRC_TOPOLOGY_FAT_TREE_H_
