#include "src/topology/case_study.h"

#include <array>

#include "src/util/strings.h"

namespace indaas {

Result<DataCenterTopology> BuildCaseStudyDatacenter(uint32_t num_tors,
                                                    uint32_t servers_per_rack) {
  if (num_tors == 0 || servers_per_rack == 0) {
    return InvalidArgumentError("BuildCaseStudyDatacenter: need >= 1 ToR and >= 1 server");
  }
  DataCenterTopology topo;
  DeviceId b1 = topo.AddDevice("b1", DeviceType::kCoreRouter);
  DeviceId b2 = topo.AddDevice("b2", DeviceType::kCoreRouter);
  DeviceId c1 = topo.AddDevice("c1", DeviceType::kCoreRouter);
  DeviceId c2 = topo.AddDevice("c2", DeviceType::kCoreRouter);
  DeviceId internet = topo.AddDevice("Internet", DeviceType::kInternet);
  for (DeviceId core : {b1, b2, c1, c2}) {
    INDAAS_RETURN_IF_ERROR(topo.AddLink(core, internet));
  }
  // Each ToR is dual-homed to one of the six 2-subsets of the four cores.
  const std::array<std::pair<DeviceId, DeviceId>, 6> kUplinkClasses = {{
      {b1, b2}, {c1, c2}, {b1, c1}, {b2, c2}, {b1, c2}, {b2, c1},
  }};
  for (uint32_t i = 1; i <= num_tors; ++i) {
    DeviceId tor = topo.AddDevice(StrFormat("e%u", i), DeviceType::kTorSwitch);
    const auto& uplinks = kUplinkClasses[(i - 1) % kUplinkClasses.size()];
    INDAAS_RETURN_IF_ERROR(topo.AddLink(tor, uplinks.first));
    INDAAS_RETURN_IF_ERROR(topo.AddLink(tor, uplinks.second));
    for (uint32_t s = 1; s <= servers_per_rack; ++s) {
      DeviceId server = topo.AddDevice(StrFormat("rack%u-srv%u", i, s), DeviceType::kServer);
      INDAAS_RETURN_IF_ERROR(topo.AddLink(server, tor));
    }
  }
  return topo;
}

Result<DataCenterTopology> BuildLabCloud() {
  DataCenterTopology topo;
  DeviceId core1 = topo.AddDevice("Core1", DeviceType::kCoreRouter);
  DeviceId core2 = topo.AddDevice("Core2", DeviceType::kCoreRouter);
  DeviceId internet = topo.AddDevice("Internet", DeviceType::kInternet);
  INDAAS_RETURN_IF_ERROR(topo.AddLink(core1, internet));
  INDAAS_RETURN_IF_ERROR(topo.AddLink(core2, internet));
  DeviceId switch1 = topo.AddDevice("Switch1", DeviceType::kTorSwitch);
  DeviceId switch2 = topo.AddDevice("Switch2", DeviceType::kTorSwitch);
  for (DeviceId sw : {switch1, switch2}) {
    INDAAS_RETURN_IF_ERROR(topo.AddLink(sw, core1));
    INDAAS_RETURN_IF_ERROR(topo.AddLink(sw, core2));
  }
  for (int i = 1; i <= 4; ++i) {
    DeviceId server = topo.AddDevice(StrFormat("Server%d", i), DeviceType::kServer);
    INDAAS_RETURN_IF_ERROR(topo.AddLink(server, i <= 2 ? switch1 : switch2));
  }
  return topo;
}

}  // namespace indaas
