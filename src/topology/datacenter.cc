#include "src/topology/datacenter.h"

#include <algorithm>
#include <limits>

namespace indaas {

const char* DeviceTypeName(DeviceType type) {
  switch (type) {
    case DeviceType::kServer:
      return "server";
    case DeviceType::kVm:
      return "vm";
    case DeviceType::kTorSwitch:
      return "tor";
    case DeviceType::kAggSwitch:
      return "agg";
    case DeviceType::kCoreRouter:
      return "core";
    case DeviceType::kInternet:
      return "internet";
  }
  return "?";
}

DeviceId DataCenterTopology::AddDevice(const std::string& name, DeviceType type) {
  DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{name, type});
  adjacency_.emplace_back();
  name_index_.emplace(name, id);
  return id;
}

Status DataCenterTopology::AddLink(DeviceId a, DeviceId b) {
  if (a >= devices_.size() || b >= devices_.size()) {
    return OutOfRangeError("AddLink: device id out of range");
  }
  if (a == b) {
    return InvalidArgumentError("AddLink: self-links are not allowed");
  }
  if (std::find(adjacency_[a].begin(), adjacency_[a].end(), b) != adjacency_[a].end()) {
    return Status::Ok();  // Duplicate links collapse.
  }
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++link_count_;
  return Status::Ok();
}

Result<DeviceId> DataCenterTopology::FindDevice(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return NotFoundError("no device named '" + name + "'");
  }
  return it->second;
}

std::vector<DeviceId> DataCenterTopology::DevicesOfType(DeviceType type) const {
  std::vector<DeviceId> out;
  for (DeviceId id = 0; id < devices_.size(); ++id) {
    if (devices_[id].type == type) {
      out.push_back(id);
    }
  }
  return out;
}

std::map<DeviceType, size_t> DataCenterTopology::CountsByType() const {
  std::map<DeviceType, size_t> counts;
  for (const Device& device : devices_) {
    ++counts[device.type];
  }
  return counts;
}

std::vector<std::vector<DeviceId>> DataCenterTopology::EnumerateRoutes(DeviceId src, DeviceId dst,
                                                                       size_t max_paths,
                                                                       size_t max_hops) const {
  std::vector<std::vector<DeviceId>> paths;
  if (src >= devices_.size() || dst >= devices_.size() || src == dst || max_paths == 0) {
    return paths;
  }
  // BFS from dst: hop distance of every device to the destination.
  constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> dist(devices_.size(), kUnreachable);
  std::vector<DeviceId> frontier{dst};
  dist[dst] = 0;
  size_t head = 0;
  while (head < frontier.size()) {
    DeviceId node = frontier[head++];
    for (DeviceId next : adjacency_[node]) {
      if (dist[next] == kUnreachable) {
        dist[next] = dist[node] + 1;
        frontier.push_back(next);
      }
    }
  }
  if (dist[src] == kUnreachable || dist[src] > max_hops) {
    return paths;
  }
  // DFS along strictly-decreasing distances (every walk is a shortest path,
  // so no visited bookkeeping is needed and no cycles can occur).
  std::vector<DeviceId> current{src};
  std::vector<size_t> cursor{0};
  while (!current.empty() && paths.size() < max_paths) {
    DeviceId node = current.back();
    size_t& idx = cursor.back();
    const std::vector<DeviceId>& neighbors = adjacency_[node];
    bool descended = false;
    while (idx < neighbors.size()) {
      DeviceId next = neighbors[idx++];
      if (dist[next] + 1 != dist[node]) {
        continue;
      }
      if (next == dst) {
        std::vector<DeviceId> path = current;
        path.push_back(dst);
        paths.push_back(std::move(path));
        if (paths.size() >= max_paths) {
          return paths;
        }
        continue;
      }
      current.push_back(next);
      cursor.push_back(0);
      descended = true;
      break;
    }
    if (!descended) {
      current.pop_back();
      cursor.pop_back();
    }
  }
  return paths;
}

std::vector<NetworkDependency> DataCenterTopology::NetworkDependencies(DeviceId src, DeviceId dst,
                                                                       size_t max_paths,
                                                                       size_t max_hops) const {
  std::vector<NetworkDependency> out;
  for (const std::vector<DeviceId>& path : EnumerateRoutes(src, dst, max_paths, max_hops)) {
    NetworkDependency dep;
    dep.src = devices_[src].name;
    dep.dst = devices_[dst].name;
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      dep.route.push_back(devices_[path[i]].name);
    }
    out.push_back(std::move(dep));
  }
  return out;
}

}  // namespace indaas
