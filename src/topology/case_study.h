// The two concrete infrastructures from the paper's case studies (§6.2).

#ifndef SRC_TOPOLOGY_CASE_STUDY_H_
#define SRC_TOPOLOGY_CASE_STUDY_H_

#include <cstdint>

#include "src/topology/datacenter.h"
#include "src/util/status.h"

namespace indaas {

// Figure 6a: a Benson-style data center with `num_tors` Top-of-Rack switches
// (e1..eN, default 33), each serving one rack of `servers_per_rack` servers,
// and four core routers (b1, b2, c1, c2) connecting the ToRs to the Internet.
//
// The paper does not publish the exact ToR->core wiring; we dual-home each
// ToR to one of the six 2-subsets of the cores, cycling deterministically by
// ToR index. This preserves the property the case study demonstrates: some
// rack pairs share no core router (no unexpected RG beyond their own ToRs)
// while most pairs do.
Result<DataCenterTopology> BuildCaseStudyDatacenter(uint32_t num_tors = 33,
                                                    uint32_t servers_per_rack = 1);

// Figure 6b: the lab IaaS cloud — four servers and four switches. Server1 and
// Server2 uplink through Switch1, Server3 and Server4 through Switch2; both
// switches are dual-homed to Core1 and Core2, which reach the Internet.
// (VMs are placed separately; see PlaceVms in placement.h.)
Result<DataCenterTopology> BuildLabCloud();

}  // namespace indaas

#endif  // SRC_TOPOLOGY_CASE_STUDY_H_
