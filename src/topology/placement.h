// OpenStack-style virtual machine placement simulation (paper §6.2.2).
//
// The hardware case study hinges on OpenStack's default scheduler placing
// two redundant VMs on the same physical server: it "randomly selects from
// the least loaded resources to host a VM". This module reproduces that
// policy (plus alternatives for comparison) over a simple capacity model.

#ifndef SRC_TOPOLOGY_PLACEMENT_H_
#define SRC_TOPOLOGY_PLACEMENT_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

enum class PlacementPolicy {
  kLeastLoadedRandom,  // OpenStack-like: random among servers with most free capacity
  kRoundRobin,         // spread sequentially
  kRandom,             // uniform among servers with any free capacity
  kAntiAffinity,       // least-loaded, but avoids servers already hosting a
                       // VM from the same group when possible
};

const char* PlacementPolicyName(PlacementPolicy policy);

struct PlacementHost {
  std::string name;
  uint32_t capacity = 0;  // VM slots
};

struct VmRequest {
  std::string name;
  std::string group;  // anti-affinity group (e.g. "riak"); may be empty
};

struct PlacementResult {
  // host index per VM, parallel to the request vector.
  std::vector<size_t> assignment;
};

// Places `vms` in order onto `hosts` under `policy`. Fails if capacity runs
// out. Deterministic given the Rng seed.
Result<PlacementResult> PlaceVms(const std::vector<VmRequest>& vms,
                                 const std::vector<PlacementHost>& hosts,
                                 PlacementPolicy policy, Rng& rng);

}  // namespace indaas

#endif  // SRC_TOPOLOGY_PLACEMENT_H_
