#include "src/topology/fat_tree.h"

#include "src/util/strings.h"

namespace indaas {

FatTreeStats FatTreeStatsFor(uint32_t ports) {
  FatTreeStats stats;
  stats.ports = ports;
  uint32_t half = ports / 2;
  stats.core_routers = static_cast<size_t>(half) * half;
  stats.agg_switches = static_cast<size_t>(ports) * half;
  stats.tor_switches = static_cast<size_t>(ports) * half;
  stats.servers = static_cast<size_t>(ports) * half * half;
  return stats;
}

Result<DataCenterTopology> BuildFatTree(uint32_t ports) {
  if (ports < 4 || ports % 2 != 0) {
    return InvalidArgumentError("BuildFatTree: port count must be even and >= 4");
  }
  const uint32_t half = ports / 2;
  DataCenterTopology topo;

  // Core routers: indexed (j, c), j in [0, half) matching the agg position
  // within a pod, c in [0, half).
  std::vector<DeviceId> cores;
  cores.reserve(static_cast<size_t>(half) * half);
  for (uint32_t j = 0; j < half; ++j) {
    for (uint32_t c = 0; c < half; ++c) {
      cores.push_back(topo.AddDevice(StrFormat("core%u", j * half + c), DeviceType::kCoreRouter));
    }
  }
  DeviceId internet = topo.AddDevice("Internet", DeviceType::kInternet);
  for (DeviceId core : cores) {
    INDAAS_RETURN_IF_ERROR(topo.AddLink(core, internet));
  }

  for (uint32_t p = 0; p < ports; ++p) {
    std::vector<DeviceId> aggs;
    std::vector<DeviceId> tors;
    aggs.reserve(half);
    tors.reserve(half);
    for (uint32_t j = 0; j < half; ++j) {
      aggs.push_back(topo.AddDevice(StrFormat("pod%u-agg%u", p, j), DeviceType::kAggSwitch));
    }
    for (uint32_t j = 0; j < half; ++j) {
      tors.push_back(topo.AddDevice(StrFormat("pod%u-tor%u", p, j), DeviceType::kTorSwitch));
    }
    // Full bipartite mesh between the pod's ToRs and aggs.
    for (DeviceId tor : tors) {
      for (DeviceId agg : aggs) {
        INDAAS_RETURN_IF_ERROR(topo.AddLink(tor, agg));
      }
    }
    // Agg j connects to cores j*half .. j*half + half-1.
    for (uint32_t j = 0; j < half; ++j) {
      for (uint32_t c = 0; c < half; ++c) {
        INDAAS_RETURN_IF_ERROR(topo.AddLink(aggs[j], cores[j * half + c]));
      }
    }
    // Servers under each ToR.
    for (uint32_t t = 0; t < half; ++t) {
      for (uint32_t s = 0; s < half; ++s) {
        DeviceId server =
            topo.AddDevice(StrFormat("pod%u-srv%u-%u", p, t, s), DeviceType::kServer);
        INDAAS_RETURN_IF_ERROR(topo.AddLink(server, tors[t]));
      }
    }
  }
  return topo;
}

}  // namespace indaas
