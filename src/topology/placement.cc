#include "src/topology/placement.h"

#include <algorithm>
#include <limits>

namespace indaas {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kLeastLoadedRandom:
      return "least-loaded-random";
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kAntiAffinity:
      return "anti-affinity";
  }
  return "?";
}

Result<PlacementResult> PlaceVms(const std::vector<VmRequest>& vms,
                                 const std::vector<PlacementHost>& hosts,
                                 PlacementPolicy policy, Rng& rng) {
  if (hosts.empty()) {
    return InvalidArgumentError("PlaceVms: no hosts");
  }
  std::vector<uint32_t> load(hosts.size(), 0);
  // Which groups each host already carries (for anti-affinity).
  std::vector<std::vector<std::string>> groups_on_host(hosts.size());
  PlacementResult result;
  result.assignment.reserve(vms.size());
  size_t rr_cursor = 0;

  for (const VmRequest& vm : vms) {
    std::vector<size_t> candidates;
    for (size_t h = 0; h < hosts.size(); ++h) {
      if (load[h] < hosts[h].capacity) {
        candidates.push_back(h);
      }
    }
    if (candidates.empty()) {
      return ResourceExhaustedError("PlaceVms: out of capacity placing '" + vm.name + "'");
    }
    size_t chosen = candidates.front();
    switch (policy) {
      case PlacementPolicy::kLeastLoadedRandom: {
        // "Least loaded" by free slots, random tie-break — the OpenStack
        // behaviour the paper blames for the co-located Riak VMs.
        uint32_t best_free = 0;
        for (size_t h : candidates) {
          best_free = std::max(best_free, hosts[h].capacity - load[h]);
        }
        std::vector<size_t> best;
        for (size_t h : candidates) {
          if (hosts[h].capacity - load[h] == best_free) {
            best.push_back(h);
          }
        }
        chosen = best[rng.NextBelow(best.size())];
        break;
      }
      case PlacementPolicy::kRoundRobin: {
        // First candidate at or after the cursor.
        chosen = candidates.front();
        for (size_t h : candidates) {
          if (h >= rr_cursor) {
            chosen = h;
            break;
          }
        }
        rr_cursor = (chosen + 1) % hosts.size();
        break;
      }
      case PlacementPolicy::kRandom:
        chosen = candidates[rng.NextBelow(candidates.size())];
        break;
      case PlacementPolicy::kAntiAffinity: {
        std::vector<size_t> safe;
        for (size_t h : candidates) {
          const auto& groups = groups_on_host[h];
          bool conflict = !vm.group.empty() &&
                          std::find(groups.begin(), groups.end(), vm.group) != groups.end();
          if (!conflict) {
            safe.push_back(h);
          }
        }
        const std::vector<size_t>& pool = safe.empty() ? candidates : safe;
        uint32_t best_free = 0;
        for (size_t h : pool) {
          best_free = std::max(best_free, hosts[h].capacity - load[h]);
        }
        std::vector<size_t> best;
        for (size_t h : pool) {
          if (hosts[h].capacity - load[h] == best_free) {
            best.push_back(h);
          }
        }
        chosen = best[rng.NextBelow(best.size())];
        break;
      }
    }
    ++load[chosen];
    if (!vm.group.empty()) {
      groups_on_host[chosen].push_back(vm.group);
    }
    result.assignment.push_back(chosen);
  }
  return result;
}

}  // namespace indaas
