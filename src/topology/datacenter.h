// Data center topology model: devices (servers, switches, routers, VMs) and
// links, with route enumeration used to derive network dependency records.

#ifndef SRC_TOPOLOGY_DATACENTER_H_
#define SRC_TOPOLOGY_DATACENTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/deps/record.h"
#include "src/util/status.h"

namespace indaas {

using DeviceId = uint32_t;

enum class DeviceType : uint8_t {
  kServer,
  kVm,
  kTorSwitch,
  kAggSwitch,
  kCoreRouter,
  kInternet,  // external sink node
};

const char* DeviceTypeName(DeviceType type);

struct Device {
  std::string name;
  DeviceType type;
};

// An undirected multigraph of devices. Devices are identified by dense ids;
// names must be unique.
class DataCenterTopology {
 public:
  DeviceId AddDevice(const std::string& name, DeviceType type);

  // Adds an undirected link; duplicate links are ignored.
  Status AddLink(DeviceId a, DeviceId b);

  size_t DeviceCount() const { return devices_.size(); }
  size_t LinkCount() const { return link_count_; }
  const Device& device(DeviceId id) const { return devices_[id]; }
  const std::vector<DeviceId>& Neighbors(DeviceId id) const { return adjacency_[id]; }

  Result<DeviceId> FindDevice(const std::string& name) const;

  // All devices of the given type, in insertion order.
  std::vector<DeviceId> DevicesOfType(DeviceType type) const;

  // Device count per type (for Table 3 style summaries).
  std::map<DeviceType, size_t> CountsByType() const;

  // Enumerates the equal-cost shortest paths from `src` to `dst` (device
  // ids, endpoints included), as ECMP routing would use: a BFS computes hop
  // distances to `dst`, then a DFS walks only edges that strictly decrease
  // the distance. Stops after `max_paths` paths; paths longer than `max_hops`
  // links are skipped entirely. Neighbor order follows insertion order, so
  // results are deterministic.
  std::vector<std::vector<DeviceId>> EnumerateRoutes(DeviceId src, DeviceId dst,
                                                     size_t max_paths = 64,
                                                     size_t max_hops = 8) const;

  // Converts enumerated routes into Table 1 network dependency records:
  // route field lists intermediate devices only (as in Figure 3).
  std::vector<NetworkDependency> NetworkDependencies(DeviceId src, DeviceId dst,
                                                     size_t max_paths = 64,
                                                     size_t max_hops = 8) const;

 private:
  std::vector<Device> devices_;
  std::vector<std::vector<DeviceId>> adjacency_;
  std::map<std::string, DeviceId> name_index_;
  size_t link_count_ = 0;
};

}  // namespace indaas

#endif  // SRC_TOPOLOGY_DATACENTER_H_
