#include "src/crypto/hash_family.h"

#include <cstring>

namespace indaas {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

uint64_t KeyedHash64(uint64_t seed, std::string_view data) {
  uint64_t h = seed ^ (static_cast<uint64_t>(data.size()) * 0x9E3779B97F4A7C15ULL);
  size_t i = 0;
  while (i + 8 <= data.size()) {
    uint64_t lane;
    std::memcpy(&lane, data.data() + i, 8);
    h = Mix64(h ^ Mix64(lane));
    i += 8;
  }
  uint64_t tail = 0;
  int shift = 0;
  while (i < data.size()) {
    tail |= static_cast<uint64_t>(static_cast<uint8_t>(data[i])) << shift;
    shift += 8;
    ++i;
  }
  return Mix64(h ^ Mix64(tail ^ 0xA0761D6478BD642FULL));
}

HashFamily::HashFamily(uint64_t family_seed, size_t size) {
  seeds_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    seeds_.push_back(Mix64(family_seed + 0x9E3779B97F4A7C15ULL * (i + 1)));
  }
}

uint64_t HashFamily::Hash(size_t index, std::string_view data) const {
  return KeyedHash64(seeds_[index], data);
}

}  // namespace indaas
