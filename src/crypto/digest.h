// Cryptographic digests implemented from scratch: MD5, SHA-1, SHA-256.
//
// P-SOP requires all ring parties to agree on one deterministic hash function
// (the paper uses MD5 in its prototype; SHA-256 is the recommended default
// here). Digests are one-shot over a byte span.

#ifndef SRC_CRYPTO_DIGEST_H_
#define SRC_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace indaas {

using Md5Digest = std::array<uint8_t, 16>;
using Sha1Digest = std::array<uint8_t, 20>;
using Sha256Digest = std::array<uint8_t, 32>;

// MD5 (RFC 1321). Provided for parity with the paper's prototype; do not use
// for new designs.
Md5Digest Md5(std::string_view data);

// SHA-1 (FIPS 180-4).
Sha1Digest Sha1(std::string_view data);

// SHA-256 (FIPS 180-4).
Sha256Digest Sha256(std::string_view data);

// Lowercase hex rendering of a digest.
template <size_t N>
std::string DigestToHex(const std::array<uint8_t, N>& digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(N * 2);
  for (uint8_t byte : digest) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

// Named hash algorithm selector used by protocol configuration.
enum class HashAlgorithm { kMd5, kSha1, kSha256 };

// Digest of `data` under `algorithm`, returned as raw bytes.
std::vector<uint8_t> HashBytes(HashAlgorithm algorithm, std::string_view data);

const char* HashAlgorithmName(HashAlgorithm algorithm);

}  // namespace indaas

#endif  // SRC_CRYPTO_DIGEST_H_
