#include "src/crypto/commutative.h"

#include "src/bignum/modular.h"
#include "src/bignum/prime.h"
#include "src/util/strings.h"

namespace indaas {

Result<CommutativeGroup> CommutativeGroup::CreateWellKnown(size_t bits) {
  INDAAS_ASSIGN_OR_RETURN(BigUint p, WellKnownSafePrime(bits));
  CommutativeGroup group;
  group.p_ = p;
  group.q_ = p.Sub(BigUint(1)).ShiftRight(1);
  INDAAS_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(p));
  group.ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx));
  return group;
}

Result<CommutativeGroup> CommutativeGroup::Create(const BigUint& safe_prime, Rng& rng) {
  if (safe_prime.BitLength() < 16) {
    return InvalidArgumentError("CommutativeGroup: prime too small (need >= 16 bits)");
  }
  BigUint q = safe_prime.Sub(BigUint(1)).ShiftRight(1);
  if (!IsProbablePrime(safe_prime, rng, 16) || !IsProbablePrime(q, rng, 16)) {
    return InvalidArgumentError("CommutativeGroup: modulus is not a safe prime");
  }
  CommutativeGroup group;
  group.p_ = safe_prime;
  group.q_ = std::move(q);
  INDAAS_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(safe_prime));
  group.ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx));
  return group;
}

BigUint CommutativeGroup::HashToElement(std::string_view data, HashAlgorithm algorithm) const {
  // Expand the digest with counter-mode re-hashing until we cover the modulus
  // size, so the pre-square value is (nearly) uniform in [0, p).
  std::vector<uint8_t> material;
  size_t need = ElementBytes() + 8;  // Oversample to keep the mod-p bias tiny.
  uint32_t counter = 0;
  while (material.size() < need) {
    std::string block(data);
    block.push_back(static_cast<char>(counter));
    std::vector<uint8_t> digest = HashBytes(algorithm, block);
    material.insert(material.end(), digest.begin(), digest.end());
    ++counter;
  }
  material.resize(need);
  BigUint x = BigUint::FromBytesBE(material).Mod(p_);
  if (x.IsZero()) {
    x = BigUint(4);  // Arbitrary QR fallback for the measure-zero case.
  }
  // Square into the quadratic-residue subgroup of order q.
  return x.Mul(x).Mod(p_);
}

BigUint CommutativeGroup::Pow(const BigUint& base, const BigUint& exponent) const {
  return ctx_->ModExp(base, exponent);
}

Result<CommutativeKey> CommutativeKey::Generate(const CommutativeGroup& group, Rng& rng) {
  const BigUint& q = group.q();
  for (int attempts = 0; attempts < 1000; ++attempts) {
    BigUint e = RandomBelow(q.Sub(BigUint(2)), rng).Add(BigUint(2));  // [2, q-1]
    auto d = ModInverse(e, q);
    if (d.ok()) {
      return CommutativeKey(std::move(e), std::move(d).value());
    }
  }
  return InternalError("CommutativeKey::Generate: could not find invertible exponent");
}

BigUint CommutativeKey::Encrypt(const CommutativeGroup& group, const BigUint& element) const {
  return group.Pow(element, e_);
}

BigUint CommutativeKey::Decrypt(const CommutativeGroup& group, const BigUint& ciphertext) const {
  return group.Pow(ciphertext, d_);
}

}  // namespace indaas
