// Paillier additively homomorphic cryptosystem.
//
// Building block for the Kissner–Song (KS) private set operation baseline the
// paper compares P-SOP against (Figure 8). Ciphertexts live in Z_{n^2}^*:
//   Enc(m; r) = (1 + m·n) · r^n  mod n^2          (g = n + 1)
//   Dec(c)    = L(c^λ mod n^2) · μ mod n,  L(u) = (u - 1) / n
// Homomorphisms: Enc(a)·Enc(b) = Enc(a+b); Enc(a)^k = Enc(k·a).

#ifndef SRC_CRYPTO_PAILLIER_H_
#define SRC_CRYPTO_PAILLIER_H_

#include <memory>

#include "src/bignum/biguint.h"
#include "src/bignum/montgomery.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

// Public key: modulus n (product of two same-size primes).
class PaillierPublicKey {
 public:
  explicit PaillierPublicKey(BigUint n);

  const BigUint& n() const { return n_; }
  const BigUint& n_squared() const { return n_squared_; }

  // Ciphertext wire size in bytes (|n^2|).
  size_t CiphertextBytes() const { return (n_squared_.BitLength() + 7) / 8; }

  // Encrypts plaintext m in [0, n) with fresh randomness from `rng`.
  Result<BigUint> Encrypt(const BigUint& plaintext, Rng& rng) const;

  // Homomorphic addition: Enc(a+b) from Enc(a), Enc(b).
  BigUint AddCiphertexts(const BigUint& c1, const BigUint& c2) const;

  // Homomorphic scalar multiply: Enc(k·a) from Enc(a).
  BigUint MulPlaintext(const BigUint& ciphertext, const BigUint& scalar) const;

  // Rerandomizes a ciphertext (multiplies by a fresh Enc(0)).
  Result<BigUint> Rerandomize(const BigUint& ciphertext, Rng& rng) const;

 private:
  BigUint n_;
  BigUint n_squared_;
  std::shared_ptr<const MontgomeryContext> ctx_;  // mod n^2
};

// Private key: λ = lcm(p-1, q-1) and μ = L(g^λ mod n^2)^-1 mod n.
class PaillierPrivateKey {
 public:
  PaillierPrivateKey(BigUint lambda, BigUint mu) : lambda_(std::move(lambda)), mu_(std::move(mu)) {}

  // Decrypts a ciphertext to its plaintext in [0, n).
  Result<BigUint> Decrypt(const PaillierPublicKey& pub, const BigUint& ciphertext) const;

 private:
  BigUint lambda_;
  BigUint mu_;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

// Generates a fresh keypair with an n of approximately `modulus_bits` bits.
Result<PaillierKeyPair> GeneratePaillierKeyPair(size_t modulus_bits, Rng& rng);

}  // namespace indaas

#endif  // SRC_CRYPTO_PAILLIER_H_
