#include "src/crypto/digest.h"

#include <cstring>

namespace indaas {
namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
uint32_t Rotr32(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

// Appends the standard Merkle–Damgård padding (0x80, zeros, 64-bit length).
// `little_endian_length` selects MD5-style length encoding.
std::vector<uint8_t> PadMessage(std::string_view data, bool little_endian_length) {
  std::vector<uint8_t> msg(data.begin(), data.end());
  uint64_t bit_len = static_cast<uint64_t>(msg.size()) * 8;
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) {
    msg.push_back(0x00);
  }
  for (int i = 0; i < 8; ++i) {
    int shift = little_endian_length ? i * 8 : (7 - i) * 8;
    msg.push_back(static_cast<uint8_t>(bit_len >> shift));
  }
  return msg;
}

constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

}  // namespace

Md5Digest Md5(std::string_view data) {
  uint32_t h[4] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476};
  std::vector<uint8_t> msg = PadMessage(data, /*little_endian_length=*/true);
  for (size_t offset = 0; offset < msg.size(); offset += 64) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      std::memcpy(&m[i], &msg[offset + static_cast<size_t>(i) * 4], 4);  // little-endian host
    }
    uint32_t a = h[0];
    uint32_t b = h[1];
    uint32_t c = h[2];
    uint32_t d = h[3];
    for (int i = 0; i < 64; ++i) {
      uint32_t f = 0;
      int g = 0;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) % 16;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) % 16;
      }
      uint32_t temp = d;
      d = c;
      c = b;
      b = b + Rotl32(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
  }
  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    out[static_cast<size_t>(i) * 4 + 0] = static_cast<uint8_t>(h[i]);
    out[static_cast<size_t>(i) * 4 + 1] = static_cast<uint8_t>(h[i] >> 8);
    out[static_cast<size_t>(i) * 4 + 2] = static_cast<uint8_t>(h[i] >> 16);
    out[static_cast<size_t>(i) * 4 + 3] = static_cast<uint8_t>(h[i] >> 24);
  }
  return out;
}

Sha1Digest Sha1(std::string_view data) {
  uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0};
  std::vector<uint8_t> msg = PadMessage(data, /*little_endian_length=*/false);
  for (size_t offset = 0; offset < msg.size(); offset += 64) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      const uint8_t* p = &msg[offset + static_cast<size_t>(i) * 4];
      w[i] = (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
             (static_cast<uint32_t>(p[2]) << 8) | p[3];
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0];
    uint32_t b = h[1];
    uint32_t c = h[2];
    uint32_t d = h[3];
    uint32_t e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f = 0;
      uint32_t k = 0;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out[static_cast<size_t>(i) * 4 + 0] = static_cast<uint8_t>(h[i] >> 24);
    out[static_cast<size_t>(i) * 4 + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[static_cast<size_t>(i) * 4 + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[static_cast<size_t>(i) * 4 + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

Sha256Digest Sha256(std::string_view data) {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::vector<uint8_t> msg = PadMessage(data, /*little_endian_length=*/false);
  for (size_t offset = 0; offset < msg.size(); offset += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      const uint8_t* p = &msg[offset + static_cast<size_t>(i) * 4];
      w[i] = (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
             (static_cast<uint32_t>(p[2]) << 8) | p[3];
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h[0];
    uint32_t b = h[1];
    uint32_t c = h[2];
    uint32_t d = h[3];
    uint32_t e = h[4];
    uint32_t f = h[5];
    uint32_t g = h[6];
    uint32_t hh = h[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = hh + s1 + ch + kSha256K[i] + w[i];
      uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i) * 4 + 0] = static_cast<uint8_t>(h[i] >> 24);
    out[static_cast<size_t>(i) * 4 + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[static_cast<size_t>(i) * 4 + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[static_cast<size_t>(i) * 4 + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

std::vector<uint8_t> HashBytes(HashAlgorithm algorithm, std::string_view data) {
  switch (algorithm) {
    case HashAlgorithm::kMd5: {
      Md5Digest d = Md5(data);
      return std::vector<uint8_t>(d.begin(), d.end());
    }
    case HashAlgorithm::kSha1: {
      Sha1Digest d = Sha1(data);
      return std::vector<uint8_t>(d.begin(), d.end());
    }
    case HashAlgorithm::kSha256: {
      Sha256Digest d = Sha256(data);
      return std::vector<uint8_t>(d.begin(), d.end());
    }
  }
  return {};
}

const char* HashAlgorithmName(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return "MD5";
    case HashAlgorithm::kSha1:
      return "SHA-1";
    case HashAlgorithm::kSha256:
      return "SHA-256";
  }
  return "?";
}

}  // namespace indaas
