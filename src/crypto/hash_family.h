// Deterministic family of 64-bit hash functions for MinHash signatures.
//
// MinHash needs m distinct hash functions agreed on by all parties. We derive
// function i by seeding a strong 64-bit mixer with i; the family is pairwise
// close to uniform, which is what the MinHash estimator requires in practice.

#ifndef SRC_CRYPTO_HASH_FAMILY_H_
#define SRC_CRYPTO_HASH_FAMILY_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace indaas {

// 64-bit keyed hash of `data` (xxHash-style avalanche over 8-byte lanes).
uint64_t KeyedHash64(uint64_t seed, std::string_view data);

// A family of `size` hash functions; function i is KeyedHash64 with a seed
// derived from (family_seed, i).
class HashFamily {
 public:
  HashFamily(uint64_t family_seed, size_t size);

  size_t size() const { return seeds_.size(); }

  // Applies function `index` to `data`.
  uint64_t Hash(size_t index, std::string_view data) const;

 private:
  std::vector<uint64_t> seeds_;
};

}  // namespace indaas

#endif  // SRC_CRYPTO_HASH_FAMILY_H_
