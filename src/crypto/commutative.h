// Commutative encryption for the P-SOP private set intersection cardinality
// protocol (Vaidya–Clifton / Agrawal et al., built on Pohlig–Hellman / SRA
// "Mental Poker" exponentiation ciphers).
//
// All parties share a safe prime p = 2q + 1. Plaintext elements are hashed
// and mapped into the quadratic-residue subgroup of Z_p^* (prime order q), so
// every party's secret exponent e in [2, q-1] is invertible modulo q and
// encryption Enc_e(m) = m^e mod p commutes across parties:
//   Enc_a(Enc_b(m)) = m^(a·b) = Enc_b(Enc_a(m)).

#ifndef SRC_CRYPTO_COMMUTATIVE_H_
#define SRC_CRYPTO_COMMUTATIVE_H_

#include <memory>
#include <string_view>

#include "src/bignum/biguint.h"
#include "src/bignum/montgomery.h"
#include "src/crypto/digest.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

// Domain parameters shared by all protocol parties: the safe prime p and the
// subgroup order q = (p-1)/2.
class CommutativeGroup {
 public:
  // Uses the well-known MODP safe prime of `bits` (768/1024/1536/2048).
  static Result<CommutativeGroup> CreateWellKnown(size_t bits);

  // Uses a caller-supplied safe prime (e.g. from GenerateSafePrime for small
  // test sizes). Verifies the safe-prime structure probabilistically.
  static Result<CommutativeGroup> Create(const BigUint& safe_prime, Rng& rng);

  const BigUint& p() const { return p_; }
  const BigUint& q() const { return q_; }
  size_t bits() const { return p_.BitLength(); }

  // Size in bytes of one group element on the wire.
  size_t ElementBytes() const { return (p_.BitLength() + 7) / 8; }

  // Hashes arbitrary data into the QR subgroup: (H(data) mod p)^2 mod p.
  // Deterministic, so equal inputs map to equal group elements across parties.
  BigUint HashToElement(std::string_view data, HashAlgorithm algorithm) const;

  // Exponentiation modulo p (shared Montgomery context).
  BigUint Pow(const BigUint& base, const BigUint& exponent) const;

 private:
  CommutativeGroup() = default;

  BigUint p_;
  BigUint q_;
  std::shared_ptr<const MontgomeryContext> ctx_;
};

// One party's keypair: encryption exponent e and its inverse d modulo q.
class CommutativeKey {
 public:
  // Samples e uniformly from [2, q-1] with gcd(e, q) = 1.
  static Result<CommutativeKey> Generate(const CommutativeGroup& group, Rng& rng);

  // Enc(m) = m^e mod p. `element` must already be a group element.
  BigUint Encrypt(const CommutativeGroup& group, const BigUint& element) const;

  // Dec(c) = c^d mod p; inverse of Encrypt within the QR subgroup.
  BigUint Decrypt(const CommutativeGroup& group, const BigUint& ciphertext) const;

  const BigUint& exponent() const { return e_; }

 private:
  CommutativeKey(BigUint e, BigUint d) : e_(std::move(e)), d_(std::move(d)) {}

  BigUint e_;
  BigUint d_;
};

}  // namespace indaas

#endif  // SRC_CRYPTO_COMMUTATIVE_H_
