#include "src/crypto/paillier.h"

#include "src/bignum/modular.h"
#include "src/bignum/prime.h"

namespace indaas {
namespace {

// L(u) = (u - 1) / n; u must be ≡ 1 mod n for well-formed inputs.
BigUint LFunction(const BigUint& u, const BigUint& n) { return u.Sub(BigUint(1)).Div(n); }

}  // namespace

PaillierPublicKey::PaillierPublicKey(BigUint n) : n_(std::move(n)) {
  n_squared_ = n_.Mul(n_);
  auto ctx = MontgomeryContext::Create(n_squared_);
  // n = p*q with odd primes, so n^2 is odd; Create cannot fail for real keys.
  if (ctx.ok()) {
    ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx).value());
  }
}

Result<BigUint> PaillierPublicKey::Encrypt(const BigUint& plaintext, Rng& rng) const {
  if (plaintext.Compare(n_) >= 0) {
    return InvalidArgumentError("Paillier: plaintext must be < n");
  }
  if (ctx_ == nullptr) {
    return FailedPreconditionError("Paillier: invalid public key");
  }
  // r uniform in [1, n) with gcd(r, n) = 1 (overwhelmingly likely).
  BigUint r = RandomBelow(n_.Sub(BigUint(1)), rng).Add(BigUint(1));
  // (1 + m*n) * r^n mod n^2 — avoids a full modexp for the g^m part.
  BigUint g_m = BigUint(1).Add(plaintext.Mul(n_)).Mod(n_squared_);
  BigUint r_n = ctx_->ModExp(r, n_);
  return g_m.Mul(r_n).Mod(n_squared_);
}

BigUint PaillierPublicKey::AddCiphertexts(const BigUint& c1, const BigUint& c2) const {
  return c1.Mul(c2).Mod(n_squared_);
}

BigUint PaillierPublicKey::MulPlaintext(const BigUint& ciphertext, const BigUint& scalar) const {
  if (ctx_ == nullptr) {
    return BigUint();
  }
  return ctx_->ModExp(ciphertext, scalar);
}

Result<BigUint> PaillierPublicKey::Rerandomize(const BigUint& ciphertext, Rng& rng) const {
  INDAAS_ASSIGN_OR_RETURN(BigUint zero_ct, Encrypt(BigUint(), rng));
  return AddCiphertexts(ciphertext, zero_ct);
}

Result<BigUint> PaillierPrivateKey::Decrypt(const PaillierPublicKey& pub,
                                            const BigUint& ciphertext) const {
  if (ciphertext.Compare(pub.n_squared()) >= 0) {
    return InvalidArgumentError("Paillier: ciphertext out of range");
  }
  INDAAS_ASSIGN_OR_RETURN(BigUint u, ModExp(ciphertext, lambda_, pub.n_squared()));
  BigUint l = LFunction(u, pub.n());
  return l.Mul(mu_).Mod(pub.n());
}

Result<PaillierKeyPair> GeneratePaillierKeyPair(size_t modulus_bits, Rng& rng) {
  if (modulus_bits < 32) {
    return InvalidArgumentError("Paillier: modulus must be at least 32 bits");
  }
  size_t prime_bits = modulus_bits / 2;
  for (int attempts = 0; attempts < 100; ++attempts) {
    INDAAS_ASSIGN_OR_RETURN(BigUint p, GeneratePrime(prime_bits, rng));
    INDAAS_ASSIGN_OR_RETURN(BigUint q, GeneratePrime(prime_bits, rng));
    if (p == q) {
      continue;
    }
    BigUint n = p.Mul(q);
    BigUint p1 = p.Sub(BigUint(1));
    BigUint q1 = q.Sub(BigUint(1));
    // Require gcd(n, (p-1)(q-1)) = 1, guaranteed for same-size primes.
    if (!Gcd(n, p1.Mul(q1)).IsOne()) {
      continue;
    }
    BigUint lambda = Lcm(p1, q1);
    PaillierPublicKey pub(n);
    // μ = L(g^λ mod n^2)^-1 mod n, with g = n+1: g^λ = 1 + λ·n mod n^2, so
    // L(g^λ) = λ mod n.
    BigUint l_g_lambda = lambda.Mod(n);
    auto mu = ModInverse(l_g_lambda, n);
    if (!mu.ok()) {
      continue;
    }
    return PaillierKeyPair{std::move(pub), PaillierPrivateKey(std::move(lambda), std::move(mu).value())};
  }
  return InternalError("Paillier key generation exceeded attempt budget");
}

}  // namespace indaas
