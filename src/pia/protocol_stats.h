// Per-party accounting shared by the PIA protocols: the quantities Figure 8
// reports (bandwidth and computation per cloud provider).
//
// PartyStats is the per-run scrape view that protocol results return;
// PartyMeter is how protocols fill it in. Every meter update also lands in
// the process-wide metrics registry (pia.<protocol>.* counters), so the
// registry sees protocol totals across all concurrent runs while results
// keep their exact per-party breakdown.

#ifndef SRC_PIA_PROTOCOL_STATS_H_
#define SRC_PIA_PROTOCOL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace indaas {

struct PartyStats {
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  size_t encrypt_ops = 0;      // public-key operations performed
  size_t homomorphic_ops = 0;  // ciphertext-space mult/exp operations
  double compute_seconds = 0;  // monotonic wall time spent in this party's crypto
};

// Accounting front-end for one party of one protocol run: updates the
// party's PartyStats and mirrors each quantity into registry counters named
// pia.<protocol>.{bytes_sent,bytes_received,encrypt_ops,homomorphic_ops}
// plus pia.<protocol>.compute_micros. The registry counters are process
// totals; per-party attribution stays in the struct.
class PartyMeter {
 public:
  PartyMeter(PartyStats* stats, const char* protocol) : stats_(stats) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    std::string prefix = std::string("pia.") + protocol + ".";
    bytes_sent_ = registry.GetCounter(prefix + "bytes_sent");
    bytes_received_ = registry.GetCounter(prefix + "bytes_received");
    encrypt_ops_ = registry.GetCounter(prefix + "encrypt_ops");
    homomorphic_ops_ = registry.GetCounter(prefix + "homomorphic_ops");
    compute_micros_ = registry.GetCounter(prefix + "compute_micros");
  }

  void AddBytesSent(size_t bytes) {
    stats_->bytes_sent += bytes;
    bytes_sent_->Add(bytes);
  }
  void AddBytesReceived(size_t bytes) {
    stats_->bytes_received += bytes;
    bytes_received_->Add(bytes);
  }
  void AddEncryptOps(size_t n = 1) {
    stats_->encrypt_ops += n;
    encrypt_ops_->Add(n);
  }
  void AddHomomorphicOps(size_t n = 1) {
    stats_->homomorphic_ops += n;
    homomorphic_ops_->Add(n);
  }
  void AddComputeSeconds(double seconds) {
    stats_->compute_seconds += seconds;
    compute_micros_->Add(static_cast<uint64_t>(seconds * 1e6));
  }

  PartyStats* stats() const { return stats_; }

 private:
  PartyStats* stats_;
  obs::Counter* bytes_sent_;
  obs::Counter* bytes_received_;
  obs::Counter* encrypt_ops_;
  obs::Counter* homomorphic_ops_;
  obs::Counter* compute_micros_;
};

// Scoped compute timer: adds the elapsed monotonic wall time to the meter's
// party when destroyed. Every compute phase of a protocol — encryption,
// homomorphic evaluation, decryption, intersection counting — charges its
// party through one of these, so compute_seconds is clock-consistent.
class PartyComputeTimer {
 public:
  explicit PartyComputeTimer(PartyMeter& meter) : meter_(meter) {}
  ~PartyComputeTimer() { meter_.AddComputeSeconds(timer_.ElapsedSeconds()); }

  PartyComputeTimer(const PartyComputeTimer&) = delete;
  PartyComputeTimer& operator=(const PartyComputeTimer&) = delete;

 private:
  PartyMeter& meter_;
  WallTimer timer_;
};

}  // namespace indaas

#endif  // SRC_PIA_PROTOCOL_STATS_H_
