// Per-party accounting shared by the PIA protocols: the quantities Figure 8
// reports (bandwidth and computation per cloud provider).

#ifndef SRC_PIA_PROTOCOL_STATS_H_
#define SRC_PIA_PROTOCOL_STATS_H_

#include <cstddef>
#include <cstdint>

namespace indaas {

struct PartyStats {
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  size_t encrypt_ops = 0;      // public-key operations performed
  size_t homomorphic_ops = 0;  // ciphertext-space mult/exp operations
  double compute_seconds = 0;  // wall time spent in this party's crypto
};

}  // namespace indaas

#endif  // SRC_PIA_PROTOCOL_STATS_H_
