#include "src/pia/audit.h"

#include <algorithm>
#include <set>

#include "src/deps/normalize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// Enumerates all r-subsets of [0, n) in lexicographic order.
std::vector<std::vector<size_t>> Combinations(size_t n, size_t r) {
  std::vector<std::vector<size_t>> out;
  if (r == 0 || r > n) {
    return out;
  }
  std::vector<size_t> pick(r);
  for (size_t i = 0; i < r; ++i) {
    pick[i] = i;
  }
  for (;;) {
    out.push_back(pick);
    int pos = static_cast<int>(r) - 1;
    while (pos >= 0 && pick[pos] == n - r + static_cast<size_t>(pos)) {
      --pos;
    }
    if (pos < 0) {
      break;
    }
    ++pick[pos];
    for (size_t i = static_cast<size_t>(pos) + 1; i < r; ++i) {
      pick[i] = pick[i - 1] + 1;
    }
  }
  return out;
}

}  // namespace

CloudProvider MakeProviderFromDepDb(const std::string& name, const DepDb& db) {
  std::set<std::string> components;
  for (const std::string& host : db.KnownHosts()) {
    for (const NetworkDependency& dep : db.RoutesFrom(host)) {
      for (const std::string& id : NormalizedComponentsOf(dep)) {
        components.insert(id);
      }
    }
    for (const HardwareDependency& dep : db.HardwareOf(host)) {
      for (const std::string& id : NormalizedComponentsOf(dep)) {
        components.insert(id);
      }
    }
    for (const SoftwareDependency& dep : db.SoftwareOn(host)) {
      for (const std::string& id : NormalizedComponentsOf(dep)) {
        components.insert(id);
      }
    }
  }
  CloudProvider provider;
  provider.name = name;
  provider.components.assign(components.begin(), components.end());
  return provider;
}

Result<PiaAuditReport> RunPiaAudit(const std::vector<CloudProvider>& providers,
                                   const PiaAuditOptions& options) {
  if (options.min_redundancy < 2 || options.min_redundancy > options.max_redundancy) {
    return InvalidArgumentError("RunPiaAudit: need 2 <= min_redundancy <= max_redundancy");
  }
  if (providers.size() < options.min_redundancy) {
    return InvalidArgumentError("RunPiaAudit: fewer providers than min_redundancy");
  }
  std::set<std::string> names;
  for (const CloudProvider& provider : providers) {
    if (!names.insert(provider.name).second) {
      return InvalidArgumentError("RunPiaAudit: duplicate provider '" + provider.name + "'");
    }
    if (provider.components.empty()) {
      return InvalidArgumentError("RunPiaAudit: provider '" + provider.name +
                                  "' has no components");
    }
  }

  PiaAuditReport report;
  report.min_redundancy = options.min_redundancy;
  report.provider_stats.assign(providers.size(), PartyStats{});

  INDAAS_TRACE_SPAN_NAMED(span, "pia.audit");
  span.Annotate("providers", std::to_string(providers.size()));
  static obs::Counter* runs_total = obs::MetricsRegistry::Global().GetCounter("pia.runs_total");
  // Per-provider aggregation meters: besides the report struct, each fold
  // lands in pia.provider.<name>.* counters for the metrics dump.
  std::vector<PartyMeter> provider_meters;
  provider_meters.reserve(providers.size());
  for (size_t i = 0; i < providers.size(); ++i) {
    std::string scope = "provider." + providers[i].name;
    provider_meters.emplace_back(&report.provider_stats[i], scope.c_str());
  }

  for (uint32_t r = options.min_redundancy; r <= options.max_redundancy; ++r) {
    std::vector<std::vector<size_t>> combos = Combinations(providers.size(), r);
    // One protocol run per candidate deployment; runs are independent, so
    // they can execute concurrently. Results stay indexed by combo.
    std::vector<Result<PsopResult>> runs(combos.size(), Status(StatusCode::kInternal, "not run"));
    auto run_one = [&](size_t c) {
      std::vector<std::vector<std::string>> datasets;
      datasets.reserve(r);
      for (size_t idx : combos[c]) {
        datasets.push_back(providers[idx].components);
      }
      PsopOptions psop = options.psop;
      // Distinct, deterministic seed per deployment.
      psop.seed = options.psop.seed * 1000003 + static_cast<uint64_t>(c) * 7919 + r;
      switch (options.method) {
        case PiaMethod::kPsopMinHash:
          runs[c] = RunPsopWithMinHash(datasets, options.minhash_m, psop);
          break;
        case PiaMethod::kSketch:
          runs[c] = RunPsopWithSketch(datasets, options.sketch_k, psop);
          break;
        case PiaMethod::kPsopExact:
          runs[c] = RunPsop(datasets, psop);
          break;
      }
    };
    if (options.parallel_deployments > 1 && combos.size() > 1) {
      ThreadPool pool(std::min(options.parallel_deployments, combos.size()));
      pool.ParallelFor(combos.size(), run_one);
    } else {
      for (size_t c = 0; c < combos.size(); ++c) {
        run_one(c);
      }
    }
    std::vector<DeploymentSimilarity> ranking;
    for (size_t c = 0; c < combos.size(); ++c) {
      if (!runs[c].ok()) {
        return runs[c].status();
      }
      const PsopResult& run = *runs[c];
      runs_total->Add(1);
      DeploymentSimilarity entry;
      for (size_t idx : combos[c]) {
        entry.providers.push_back(providers[idx].name);
      }
      entry.jaccard = run.jaccard;
      for (size_t i = 0; i < combos[c].size(); ++i) {
        PartyMeter& agg = provider_meters[combos[c][i]];
        const PartyStats& cur = run.party_stats[i];
        agg.AddBytesSent(cur.bytes_sent);
        agg.AddBytesReceived(cur.bytes_received);
        agg.AddEncryptOps(cur.encrypt_ops);
        agg.AddHomomorphicOps(cur.homomorphic_ops);
        agg.AddComputeSeconds(cur.compute_seconds);
      }
      ranking.push_back(std::move(entry));
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const DeploymentSimilarity& a, const DeploymentSimilarity& b) {
                if (a.jaccard != b.jaccard) {
                  return a.jaccard < b.jaccard;
                }
                return a.providers < b.providers;
              });
    report.rankings.push_back(std::move(ranking));
  }
  return report;
}

Result<PiaAllPairsReport> RunAllPairsPiaAudit(const std::vector<CloudProvider>& providers,
                                              const PiaAllPairsOptions& options) {
  if (providers.size() < 2) {
    return InvalidArgumentError("RunAllPairsPiaAudit: need at least two providers");
  }
  std::set<std::string> names;
  std::vector<std::vector<std::string>> sets;
  sets.reserve(providers.size());
  for (const CloudProvider& provider : providers) {
    if (!names.insert(provider.name).second) {
      return InvalidArgumentError("RunAllPairsPiaAudit: duplicate provider '" + provider.name +
                                  "'");
    }
    if (provider.components.empty()) {
      return InvalidArgumentError("RunAllPairsPiaAudit: provider '" + provider.name +
                                  "' has no components");
    }
    sets.push_back(provider.components);
  }

  sketch::AllPairsOptions engine;
  engine.sketch = options.sketch;
  engine.lsh = options.lsh;
  engine.verify = options.verify;
  engine.min_jaccard = options.min_jaccard;
  engine.top = options.top;
  sketch::AllPairsResult result = sketch::RunAllPairs(sets, engine);

  PiaAllPairsReport report;
  report.providers = result.providers;
  report.pairs_possible = result.pairs_possible;
  report.pairs_evaluated = result.pairs_evaluated;
  report.pairs_pruned = result.pairs_pruned;
  report.sketch_bytes = result.sketch_bytes;
  report.pairs.reserve(result.pairs.size());
  for (const sketch::ScoredPair& pair : result.pairs) {
    report.pairs.push_back(
        {providers[pair.a].name, providers[pair.b].name, pair.jaccard});
  }
  return report;
}

std::string RenderAllPairsReport(const PiaAllPairsReport& report) {
  std::string out = StrFormat(
      "All-pairs sketch audit: %zu providers, %zu candidate pairs scored of %zu possible "
      "(%zu pruned), %zu sketch bytes exchanged\n",
      report.providers, report.pairs_evaluated, report.pairs_possible, report.pairs_pruned,
      report.sketch_bytes);
  out += "Least independent provider pairs (highest Jaccard first):\n";
  TextTable table({"Rank", "Provider Pair", "Jaccard"});
  size_t rank = 1;
  for (const RankedProviderPair& pair : report.pairs) {
    table.AddRow({std::to_string(rank++), pair.a + " & " + pair.b,
                  StrFormat("%.4f", pair.jaccard)});
  }
  out += table.ToString();
  return out;
}

std::string RenderPiaReport(const PiaAuditReport& report) {
  std::string out;
  for (size_t level = 0; level < report.rankings.size(); ++level) {
    uint32_t r = report.min_redundancy + static_cast<uint32_t>(level);
    out += StrFormat("%u-way redundancy deployments (most independent first):\n", r);
    TextTable table({"Rank", StrFormat("%u-Way Redundancy Deployment", r), "Jaccard"});
    size_t rank = 1;
    for (const DeploymentSimilarity& entry : report.rankings[level]) {
      table.AddRow({std::to_string(rank++), Join(entry.providers, " & "),
                    StrFormat("%.4f", entry.jaccard)});
    }
    out += table.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace indaas
