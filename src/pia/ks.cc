#include "src/pia/ks.h"

#include <algorithm>
#include <set>

#include "src/bignum/modular.h"
#include "src/crypto/hash_family.h"
#include "src/crypto/paillier.h"
#include "src/obs/trace.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// Plaintext polynomial over Z_n, little-endian coefficients (c0 + c1 x + ...).
using Poly = std::vector<BigUint>;

// Multiplies `poly` by the monic factor (x - root) modulo n.
Poly MulByRootFactor(const Poly& poly, const BigUint& root, const BigUint& n) {
  Poly out(poly.size() + 1, BigUint());
  BigUint neg_root = ModSub(BigUint(), root, n);
  for (size_t t = 0; t < poly.size(); ++t) {
    out[t] = ModAdd(out[t], ModMul(poly[t], neg_root, n), n);
    out[t + 1] = ModAdd(out[t + 1], poly[t], n);
  }
  return out;
}

// Builds Π (x - root) over Z_n.
Poly PolyFromRoots(const std::vector<BigUint>& roots, const BigUint& n) {
  Poly poly{BigUint(1)};
  for (const BigUint& root : roots) {
    poly = MulByRootFactor(poly, root, n);
  }
  return poly;
}

struct Party {
  std::vector<BigUint> elements;                    // hashed element values
  std::vector<size_t> buckets;                      // bucket per element
  std::vector<std::vector<BigUint>> enc_polys;      // per bucket, encrypted coeffs
  PartyStats stats;
};

}  // namespace

Result<KsResult> RunKsIntersectionCardinality(
    const std::vector<std::vector<std::string>>& datasets, const KsOptions& options) {
  const size_t k = datasets.size();
  if (k < 2) {
    return InvalidArgumentError("RunKs: need at least two parties");
  }
  size_t max_elements = 0;
  for (const auto& dataset : datasets) {
    if (dataset.empty()) {
      return InvalidArgumentError("RunKs: empty dataset");
    }
    max_elements = std::max(max_elements, dataset.size());
  }
  INDAAS_TRACE_SPAN_NAMED(span, "pia.ks");
  span.Annotate("parties", std::to_string(k));

  std::vector<Party> parties(k);
  std::vector<PartyMeter> meters;
  meters.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    meters.emplace_back(&parties[i].stats, "ks");
  }

  Rng rng(options.seed);
  // Party 0 stands in for the threshold-decryption key holder; key
  // generation is its compute.
  Result<PaillierKeyPair> keypair_or = InternalError("RunKs: keygen not run");
  {
    PartyComputeTimer timer(meters[0]);
    keypair_or = GeneratePaillierKeyPair(options.paillier_bits, rng);
  }
  INDAAS_RETURN_IF_ERROR(keypair_or.status());
  PaillierKeyPair& keypair = *keypair_or;
  const PaillierPublicKey& pub = keypair.pub;
  const BigUint& n = pub.n();
  const size_t cipher_bytes = pub.CiphertextBytes();

  const size_t num_buckets =
      std::max<size_t>(1, max_elements / std::max<size_t>(1, options.bucket_capacity));
  const uint64_t element_seed = options.seed ^ 0x4B53454C454D454EULL;
  const uint64_t bucket_seed = options.seed ^ 0x4B534255434B4554ULL;

  // Hash elements (dedup first: sets, not multisets) and assign buckets.
  size_t max_bucket_load = 0;
  std::vector<std::vector<std::vector<BigUint>>> roots_per_party(k);
  for (size_t i = 0; i < k; ++i) {
    PartyComputeTimer timer(meters[i]);
    std::set<std::string> unique(datasets[i].begin(), datasets[i].end());
    roots_per_party[i].assign(num_buckets, {});
    for (const std::string& element : unique) {
      BigUint value(KeyedHash64(element_seed, element));
      size_t bucket = KeyedHash64(bucket_seed, element) % num_buckets;
      parties[i].elements.push_back(value);
      parties[i].buckets.push_back(bucket);
      roots_per_party[i][bucket].push_back(value);
    }
    for (const auto& bucket_roots : roots_per_party[i]) {
      max_bucket_load = std::max(max_bucket_load, bucket_roots.size());
    }
  }
  const size_t degree = max_bucket_load;  // All bucket polys padded to this.

  // Each party builds and encrypts its bucket polynomials (padded with
  // random phantom roots so every bucket has the same degree).
  {
    INDAAS_TRACE_SPAN("pia.ks.encrypt_polys");
    for (size_t i = 0; i < k; ++i) {
      Party& party = parties[i];
      {
        PartyComputeTimer timer(meters[i]);
        party.enc_polys.resize(num_buckets);
        for (size_t b = 0; b < num_buckets; ++b) {
          std::vector<BigUint> roots = roots_per_party[i][b];
          while (roots.size() < degree) {
            roots.push_back(BigUint(rng.Next()));
          }
          Poly poly = PolyFromRoots(roots, n);
          party.enc_polys[b].reserve(poly.size());
          for (const BigUint& coeff : poly) {
            INDAAS_ASSIGN_OR_RETURN(BigUint ct, pub.Encrypt(coeff, rng));
            party.enc_polys[b].push_back(std::move(ct));
            meters[i].AddEncryptOps();
          }
        }
      }
      // Broadcast the encrypted polynomials to the other k-1 parties.
      size_t poly_bytes = num_buckets * (degree + 1) * cipher_bytes;
      meters[i].AddBytesSent(poly_bytes * (k - 1));
      for (size_t j = 0; j < k; ++j) {
        if (j != i) {
          meters[j].AddBytesReceived(poly_bytes);
        }
      }
    }
  }

  // Each party i multiplies every party's encrypted polynomial by a fresh
  // random degree-1 polynomial r_{i,j} and accumulates its partial
  // λ_i = Σ_j r_{i,j}·f_j (degree D+1). Partials go to party 0 to be summed.
  const size_t lambda_len = degree + 2;
  std::vector<std::vector<std::vector<BigUint>>> partials(k);
  {
    INDAAS_TRACE_SPAN("pia.ks.randomize");
    for (size_t i = 0; i < k; ++i) {
      {
        PartyComputeTimer timer(meters[i]);
        auto& partial = partials[i];
        partial.assign(num_buckets, {});
        for (size_t b = 0; b < num_buckets; ++b) {
          std::vector<BigUint>& acc = partial[b];
          acc.assign(lambda_len, BigUint(1));  // Enc-free identity: ct "1" = Enc(0)·triv
          for (size_t j = 0; j < k; ++j) {
            // r = r0 + r1·x, r1 != 0.
            BigUint r0(rng.Next());
            BigUint r1(rng.Next() | 1);
            const std::vector<BigUint>& f = parties[j].enc_polys[b];
            for (size_t t = 0; t < f.size(); ++t) {
              // Contribution of f_t to coefficients t (×r0) and t+1 (×r1).
              BigUint c0 = pub.MulPlaintext(f[t], r0);
              BigUint c1 = pub.MulPlaintext(f[t], r1);
              acc[t] = pub.AddCiphertexts(acc[t], c0);
              acc[t + 1] = pub.AddCiphertexts(acc[t + 1], c1);
              meters[i].AddHomomorphicOps(4);
            }
          }
        }
      }
      if (i != 0) {
        size_t bytes = num_buckets * lambda_len * cipher_bytes;
        meters[i].AddBytesSent(bytes);
        meters[0].AddBytesReceived(bytes);
      }
    }
  }

  // Party 0 sums the partials into λ and broadcasts λ to everyone.
  std::vector<std::vector<BigUint>> lambda(num_buckets,
                                           std::vector<BigUint>(lambda_len, BigUint(1)));
  {
    INDAAS_TRACE_SPAN("pia.ks.aggregate");
    {
      PartyComputeTimer timer(meters[0]);
      for (size_t i = 0; i < k; ++i) {
        for (size_t b = 0; b < num_buckets; ++b) {
          for (size_t t = 0; t < lambda_len; ++t) {
            lambda[b][t] = pub.AddCiphertexts(lambda[b][t], partials[i][b][t]);
            meters[0].AddHomomorphicOps();
          }
        }
      }
    }
    size_t bytes = num_buckets * lambda_len * cipher_bytes;
    meters[0].AddBytesSent(bytes * (k - 1));
    for (size_t j = 1; j < k; ++j) {
      meters[j].AddBytesReceived(bytes);
    }
  }

  // Every party evaluates λ at its own elements (encrypted Horner), blinds,
  // and sends the evaluations to party 0 for decryption. Decryption is party
  // 0's compute (threshold-decryption stand-in), not the evaluator's — its
  // time and key operations are charged to party 0. Party 0's zero count is
  // the intersection cardinality.
  KsResult result;
  INDAAS_TRACE_SPAN("pia.ks.evaluate_decrypt");
  for (size_t i = 0; i < k; ++i) {
    Party& party = parties[i];
    std::vector<BigUint> blinded;
    {
      PartyComputeTimer timer(meters[i]);
      blinded.reserve(party.elements.size());
      for (size_t e = 0; e < party.elements.size(); ++e) {
        const std::vector<BigUint>& lam = lambda[party.buckets[e]];
        const BigUint& x = party.elements[e];
        BigUint acc = lam.back();
        for (size_t t = lambda_len - 1; t-- > 0;) {
          acc = pub.AddCiphertexts(pub.MulPlaintext(acc, x), lam[t]);
          meters[i].AddHomomorphicOps(2);
        }
        // Blind with a random nonzero scalar: zero stays zero.
        acc = pub.MulPlaintext(acc, BigUint(rng.Next() | 1));
        meters[i].AddHomomorphicOps();
        blinded.push_back(std::move(acc));
      }
    }
    if (i != 0) {
      size_t bytes = blinded.size() * cipher_bytes;
      meters[i].AddBytesSent(bytes);
      meters[0].AddBytesReceived(bytes);
    }
    size_t zeros = 0;
    {
      PartyComputeTimer timer(meters[0]);
      for (const BigUint& ct : blinded) {
        INDAAS_ASSIGN_OR_RETURN(BigUint plain, keypair.priv.Decrypt(pub, ct));
        meters[0].AddEncryptOps();
        if (plain.IsZero()) {
          ++zeros;
        }
      }
    }
    if (i == 0) {
      result.intersection = zeros;
    }
  }
  result.party_stats.reserve(k);
  for (Party& party : parties) {
    result.party_stats.push_back(party.stats);
  }
  return result;
}

}  // namespace indaas
