// Network cost model for the protocol simulations.
//
// Protocol runs happen in-process, so PartyStats measures CPU and bytes but
// not network time. This model converts a protocol's traffic volume and
// round count into an estimated wall-clock contribution for a given link
// profile, so benches can report "estimated wall time at 1 Gbps / 0.5 ms
// RTT" alongside raw compute — the quantity the paper's cluster measured
// implicitly. bench_fig8_pia_overheads --real cross-validates the estimate
// against measured loopback wall time of the socket-backed ring.

#ifndef SRC_PIA_NETWORK_MODEL_H_
#define SRC_PIA_NETWORK_MODEL_H_

#include <cstddef>

#include "src/pia/protocol_stats.h"

namespace indaas {

struct NetworkModel {
  double rtt_seconds = 0.0005;          // per communication round
  double bandwidth_bytes_per_s = 125e6;  // 1 Gbps

  // Time to move `bytes` over the link plus `rounds` round-trip latencies.
  double TransferSeconds(size_t bytes, size_t rounds) const {
    double bw = bandwidth_bytes_per_s > 0 ? bandwidth_bytes_per_s : 1.0;
    return static_cast<double>(bytes) / bw + static_cast<double>(rounds) * rtt_seconds;
  }

  // Directional variant: a party's NIC serializes both what it sends and
  // what it receives, so both directions are charged. This matters for
  // asymmetric protocols — the KS aggregator receives far more than it
  // sends, and charging only bytes_sent undercounts its wall time.
  double TransferSeconds(size_t bytes_sent, size_t bytes_received, size_t rounds) const {
    return TransferSeconds(bytes_sent + bytes_received, rounds);
  }

  // Estimated wall clock for one party: its compute plus shipping what it
  // sent and received, with `rounds` synchronization points.
  double EstimateWallSeconds(const PartyStats& stats, size_t rounds) const {
    return stats.compute_seconds +
           TransferSeconds(stats.bytes_sent, stats.bytes_received, rounds);
  }
};

// Common profiles.
inline NetworkModel DatacenterNetwork() { return NetworkModel{0.0005, 125e6}; }   // 1 Gbps LAN
inline NetworkModel WideAreaNetwork() { return NetworkModel{0.05, 12.5e6}; }      // 100 Mbps WAN

}  // namespace indaas

#endif  // SRC_PIA_NETWORK_MODEL_H_
