// Private independence auditing orchestration (paper §4.2.4–4.2.5).
//
// Given k cloud providers with normalized component-sets, evaluates the
// Jaccard similarity of every candidate n-way redundancy deployment via the
// P-SOP protocol (exact, or MinHash-compressed for large sets) and produces
// the ranking the auditing agent returns to the client — lowest similarity
// (most independent) first, exactly like Table 2.

#ifndef SRC_PIA_AUDIT_H_
#define SRC_PIA_AUDIT_H_

#include <string>
#include <vector>

#include "src/deps/depdb.h"
#include "src/pia/protocol_stats.h"
#include "src/pia/psop.h"
#include "src/util/status.h"

namespace indaas {

struct CloudProvider {
  std::string name;
  std::vector<std::string> components;  // normalized ids
};

// Builds a provider's normalized component-set from its own DepDB (§4.2.3:
// each provider generates its local dependency graph at the component-set
// level and normalizes identifiers before entering the protocol). Expands
// every record into normalized component ids, deduplicated and sorted.
CloudProvider MakeProviderFromDepDb(const std::string& name, const DepDb& db);

enum class PiaMethod {
  kPsopExact,    // full component-sets through P-SOP
  kPsopMinHash,  // MinHash samples through P-SOP (large sets)
};

struct PiaAuditOptions {
  PiaMethod method = PiaMethod::kPsopExact;
  size_t minhash_m = 256;  // sample size when method == kPsopMinHash
  PsopOptions psop;
  uint32_t min_redundancy = 2;  // smallest deployment size to evaluate
  uint32_t max_redundancy = 3;  // largest deployment size to evaluate
  // Evaluate candidate deployments concurrently (each deployment's protocol
  // run is independent). 1 = sequential.
  size_t parallel_deployments = 1;
};

struct DeploymentSimilarity {
  std::vector<std::string> providers;  // provider names in the deployment
  double jaccard = 0.0;
};

struct PiaAuditReport {
  // One ranking per redundancy level (index 0 = min_redundancy), each sorted
  // ascending by Jaccard (most independent first).
  std::vector<std::vector<DeploymentSimilarity>> rankings;
  uint32_t min_redundancy = 2;
  // Aggregate protocol cost across all evaluated deployments, per provider
  // (indexed like the input providers).
  std::vector<PartyStats> provider_stats;
};

// Evaluates every min..max-way deployment. Requires >= min_redundancy
// providers with unique names and non-empty component sets.
Result<PiaAuditReport> RunPiaAudit(const std::vector<CloudProvider>& providers,
                                   const PiaAuditOptions& options = {});

// Renders the Table 2 style ranking list.
std::string RenderPiaReport(const PiaAuditReport& report);

}  // namespace indaas

#endif  // SRC_PIA_AUDIT_H_
