// Private independence auditing orchestration (paper §4.2.4–4.2.5).
//
// Given k cloud providers with normalized component-sets, evaluates the
// Jaccard similarity of every candidate n-way redundancy deployment via the
// P-SOP protocol (exact, or MinHash-compressed for large sets) and produces
// the ranking the auditing agent returns to the client — lowest similarity
// (most independent) first, exactly like Table 2.

#ifndef SRC_PIA_AUDIT_H_
#define SRC_PIA_AUDIT_H_

#include <string>
#include <vector>

#include "src/deps/depdb.h"
#include "src/pia/protocol_stats.h"
#include "src/pia/psop.h"
#include "src/sketch/allpairs.h"
#include "src/util/status.h"

namespace indaas {

struct CloudProvider {
  std::string name;
  std::vector<std::string> components;  // normalized ids
};

// Builds a provider's normalized component-set from its own DepDB (§4.2.3:
// each provider generates its local dependency graph at the component-set
// level and normalizes identifiers before entering the protocol). Expands
// every record into normalized component ids, deduplicated and sorted.
CloudProvider MakeProviderFromDepDb(const std::string& name, const DepDb& db);

enum class PiaMethod {
  kPsopExact,    // full component-sets through P-SOP
  kPsopMinHash,  // MinHash samples through P-SOP (large sets)
  kSketch,       // sketch-exchange: ship MinHash registers, no encryption
};

struct PiaAuditOptions {
  PiaMethod method = PiaMethod::kPsopExact;
  size_t minhash_m = 256;   // sample size when method == kPsopMinHash
  uint32_t sketch_k = 256;  // registers per sketch when method == kSketch
  PsopOptions psop;
  uint32_t min_redundancy = 2;  // smallest deployment size to evaluate
  uint32_t max_redundancy = 3;  // largest deployment size to evaluate
  // Evaluate candidate deployments concurrently (each deployment's protocol
  // run is independent). 1 = sequential.
  size_t parallel_deployments = 1;
};

struct DeploymentSimilarity {
  std::vector<std::string> providers;  // provider names in the deployment
  double jaccard = 0.0;
};

struct PiaAuditReport {
  // One ranking per redundancy level (index 0 = min_redundancy), each sorted
  // ascending by Jaccard (most independent first).
  std::vector<std::vector<DeploymentSimilarity>> rankings;
  uint32_t min_redundancy = 2;
  // Aggregate protocol cost across all evaluated deployments, per provider
  // (indexed like the input providers).
  std::vector<PartyStats> provider_stats;
};

// Evaluates every min..max-way deployment. Requires >= min_redundancy
// providers with unique names and non-empty component sets.
Result<PiaAuditReport> RunPiaAudit(const std::vector<CloudProvider>& providers,
                                   const PiaAuditOptions& options = {});

// Renders the Table 2 style ranking list.
std::string RenderPiaReport(const PiaAuditReport& report);

// All-pairs audit at provider scale (DESIGN.md §8). Instead of one protocol
// ring per pair (N(N-1)/2 executions), every provider is sketched once, LSH
// banding nominates the candidate pairs, and only those are scored. The
// report surfaces the *least independent* (highest-Jaccard) pairs first —
// the correlated-failure risk view an operator acts on.
struct PiaAllPairsOptions {
  sketch::SketchParams sketch;
  sketch::LshParams lsh;
  // kRegisters (default) scores candidates from the sketches alone — the
  // mode matching the sketch-exchange protocol's privacy posture, where the
  // auditor only ever holds registers. kFingerprints computes collision-
  // exact Jaccard over hashed element fingerprints (needs set access; used
  // by accuracy benchmarks).
  sketch::VerifyMode verify = sketch::VerifyMode::kRegisters;
  double min_jaccard = 0.0;  // drop pairs provably below this similarity
  size_t top = 10;           // keep the top-N riskiest pairs; 0 = all
};

struct RankedProviderPair {
  std::string a;
  std::string b;
  double jaccard = 0.0;
};

struct PiaAllPairsReport {
  std::vector<RankedProviderPair> pairs;  // descending Jaccard (riskiest first)
  size_t providers = 0;
  size_t pairs_possible = 0;   // what an exact per-pair audit would run
  size_t pairs_evaluated = 0;  // LSH candidates actually scored
  size_t pairs_pruned = 0;
  size_t sketch_bytes = 0;     // total register bytes across providers
};

Result<PiaAllPairsReport> RunAllPairsPiaAudit(const std::vector<CloudProvider>& providers,
                                              const PiaAllPairsOptions& options = {});

// Renders the riskiest-pairs table plus the candidate-generation summary.
std::string RenderAllPairsReport(const PiaAllPairsReport& report);

}  // namespace indaas

#endif  // SRC_PIA_AUDIT_H_
