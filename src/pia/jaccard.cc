#include "src/pia/jaccard.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace indaas {

Result<double> JaccardSimilarity(const std::vector<std::vector<std::string>>& sets) {
  if (sets.size() < 2) {
    return InvalidArgumentError("JaccardSimilarity: need at least two sets");
  }
  std::map<std::string, size_t> counts;
  for (const auto& set : sets) {
    std::set<std::string> unique(set.begin(), set.end());
    for (const std::string& element : unique) {
      ++counts[element];
    }
  }
  if (counts.empty()) {
    return 0.0;
  }
  size_t intersection = 0;
  for (const auto& [element, count] : counts) {
    if (count == sets.size()) {
      ++intersection;
    }
  }
  return static_cast<double>(intersection) / static_cast<double>(counts.size());
}

MinHashSignature::MinHashSignature(const HashFamily& family,
                                   const std::vector<std::string>& elements) {
  mins_.assign(family.size(), std::numeric_limits<uint64_t>::max());
  for (const std::string& element : elements) {
    for (size_t i = 0; i < family.size(); ++i) {
      mins_[i] = std::min(mins_[i], family.Hash(i, element));
    }
  }
}

Result<double> EstimateJaccard(const std::vector<MinHashSignature>& signatures) {
  if (signatures.size() < 2) {
    return InvalidArgumentError("EstimateJaccard: need at least two signatures");
  }
  const size_t m = signatures.front().size();
  if (m == 0) {
    return InvalidArgumentError("EstimateJaccard: empty signatures");
  }
  for (const MinHashSignature& sig : signatures) {
    if (sig.size() != m) {
      return InvalidArgumentError("EstimateJaccard: signature sizes differ");
    }
  }
  size_t agree = 0;
  for (size_t i = 0; i < m; ++i) {
    bool all_equal = true;
    uint64_t first = signatures.front().value(i);
    for (size_t s = 1; s < signatures.size(); ++s) {
      if (signatures[s].value(i) != first) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(m);
}

}  // namespace indaas
