// Jaccard similarity and MinHash estimation (paper §4.2.2).
//
// J(S_0..S_{k-1}) = |∩ S_i| / |∪ S_i|. J near 0 means the datasets are almost
// disjoint (independent); J >= 0.75 is conventionally "significantly
// correlated". MinHash compresses each set into an m-entry signature;
// J ≈ (# indices where all k signatures agree) / m, with expected error
// O(1/sqrt(m)) (Broder).

#ifndef SRC_PIA_JACCARD_H_
#define SRC_PIA_JACCARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/hash_family.h"
#include "src/util/status.h"

namespace indaas {

// Exact multi-way Jaccard similarity over string sets (inputs need not be
// sorted or unique). Returns 0 for an empty union; errors on < 2 sets.
Result<double> JaccardSimilarity(const std::vector<std::vector<std::string>>& sets);

// Conventional threshold above which datasets count as significantly
// correlated (Walsh & Sirer, NSDI'06, as cited in §4.2.2).
inline constexpr double kSignificantCorrelation = 0.75;

// MinHash signature: entry i is min over the set of hash function i.
class MinHashSignature {
 public:
  // Builds the signature of `elements` under `family` (all of it).
  MinHashSignature(const HashFamily& family, const std::vector<std::string>& elements);

  size_t size() const { return mins_.size(); }
  uint64_t value(size_t i) const { return mins_[i]; }
  const std::vector<uint64_t>& values() const { return mins_; }

 private:
  std::vector<uint64_t> mins_;
};

// Estimated Jaccard across k signatures: fraction of indices where all agree.
// All signatures must share the same size (same family); errors otherwise.
Result<double> EstimateJaccard(const std::vector<MinHashSignature>& signatures);

}  // namespace indaas

#endif  // SRC_PIA_JACCARD_H_
