// KS: Kissner–Song style private set intersection cardinality baseline
// (paper §6.3.2 compares P-SOP against it).
//
// Sets are encoded as polynomials whose roots are the (hashed) elements,
// bucketized for efficiency; coefficients are encrypted under an additively
// homomorphic Paillier key. Every party multiplies every other party's
// encrypted polynomial by a fresh random polynomial (homomorphically) and the
// results are summed: λ = Σ_{i,j} r_{i,j}·f_j. λ(x) = 0 (w.h.p.) exactly when
// x is a root of every f_j, i.e. x is in all sets. Evaluating the encrypted λ
// at a party's own elements and counting decrypted zeros yields |∩ S_i|.
//
// Simplifications vs. full KS, documented in DESIGN.md: the threshold-
// decryption key is held by one designated party (honest-but-curious model),
// and the random-polynomial degree is 1. The operation counts per party —
// O(n) Paillier encryptions, O((k-1)·n) homomorphic multiplications, O(n·D)
// evaluation ops, ciphertexts of 2×|key| bits — match the real protocol's
// cost structure, which is what Figure 8 measures.

#ifndef SRC_PIA_KS_H_
#define SRC_PIA_KS_H_

#include <string>
#include <vector>

#include "src/pia/protocol_stats.h"
#include "src/util/status.h"

namespace indaas {

struct KsOptions {
  size_t paillier_bits = 1024;  // |n|; ciphertexts are 2048-bit
  // Expected elements per bucket (buckets keep polynomial degrees constant;
  // the standard Freedman-style optimization).
  size_t bucket_capacity = 10;
  uint64_t seed = 1;
};

struct KsResult {
  size_t intersection = 0;
  std::vector<PartyStats> party_stats;
};

// Runs the protocol; requires >= 2 parties with non-empty datasets.
Result<KsResult> RunKsIntersectionCardinality(
    const std::vector<std::vector<std::string>>& datasets, const KsOptions& options = {});

}  // namespace indaas

#endif  // SRC_PIA_KS_H_
