#include "src/pia/psop.h"

#include <algorithm>
#include <map>

#include "src/obs/trace.h"
#include "src/sketch/sketch.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// One ring party: its key, its in-flight dataset, and its accounting.
struct Party {
  CommutativeKey key;
  std::vector<BigUint> dataset;  // the dataset currently held (in transit)
  PartyStats stats;
};

}  // namespace

std::vector<std::string> DisambiguateMultiset(const std::vector<std::string>& elements) {
  std::map<std::string, size_t> seen;
  std::vector<std::string> out;
  out.reserve(elements.size());
  for (const std::string& element : elements) {
    size_t occurrence = ++seen[element];
    out.push_back(element + "||" + std::to_string(occurrence));
  }
  return out;
}

Result<PsopResult> RunPsop(const std::vector<std::vector<std::string>>& datasets,
                           const PsopOptions& options) {
  const size_t k = datasets.size();
  if (k < 2) {
    return InvalidArgumentError("RunPsop: need at least two parties");
  }
  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop");
  span.Annotate("parties", std::to_string(k));
  INDAAS_ASSIGN_OR_RETURN(CommutativeGroup group,
                          CommutativeGroup::CreateWellKnown(options.group_bits));
  const size_t element_bytes = group.ElementBytes();

  Rng rng(options.seed);
  std::vector<Party> parties;
  parties.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    INDAAS_ASSIGN_OR_RETURN(CommutativeKey key, CommutativeKey::Generate(group, rng));
    parties.push_back(Party{std::move(key), {}, {}});
  }
  // Meters bind to parties' stats; `parties` must not reallocate below.
  std::vector<PartyMeter> meters;
  meters.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    meters.emplace_back(&parties[i].stats, "psop");
  }

  // Phase 0: hash into the group, first encryption, permutation.
  {
    INDAAS_TRACE_SPAN("pia.psop.encrypt_permute");
    for (size_t i = 0; i < k; ++i) {
      Party& party = parties[i];
      PartyComputeTimer timer(meters[i]);
      std::vector<std::string> elements = DisambiguateMultiset(datasets[i]);
      party.dataset.reserve(elements.size());
      for (const std::string& element : elements) {
        BigUint point = group.HashToElement(element, options.hash);
        party.dataset.push_back(party.key.Encrypt(group, point));
        meters[i].AddEncryptOps();
      }
      rng.Shuffle(party.dataset);
    }
  }

  // Phase 1: pass each dataset around the ring; every hop encrypts and
  // permutes. After k hops a dataset is back at its origin, encrypted by all.
  {
    INDAAS_TRACE_SPAN("pia.psop.ring");
    for (size_t hop = 0; hop < k; ++hop) {
      // Dataset originated by party i currently sits at party (i + hop) % k.
      std::vector<std::vector<BigUint>> in_flight(k);
      for (size_t i = 0; i < k; ++i) {
        size_t holder = (i + hop) % k;
        size_t next = (i + hop + 1) % k;
        size_t bytes = parties[holder].dataset.size() * element_bytes;
        meters[holder].AddBytesSent(bytes);
        meters[next].AddBytesReceived(bytes);
        in_flight[next] = std::move(parties[holder].dataset);
      }
      for (size_t next = 0; next < k; ++next) {
        parties[next].dataset = std::move(in_flight[next]);
        if (hop + 1 == k) {
          continue;  // Dataset is back home fully encrypted; no more crypto.
        }
        Party& party = parties[next];
        PartyComputeTimer timer(meters[next]);
        for (BigUint& element : party.dataset) {
          element = party.key.Encrypt(group, element);
          meters[next].AddEncryptOps();
        }
        rng.Shuffle(party.dataset);
      }
    }
  }

  // Phase 2: parties share the fully-encrypted datasets (each holder
  // broadcasts to the k-1 peers) and count common/unique ciphertexts.
  INDAAS_TRACE_SPAN("pia.psop.share_count");
  for (size_t i = 0; i < k; ++i) {
    size_t bytes = parties[i].dataset.size() * element_bytes;
    meters[i].AddBytesSent(bytes * (k - 1));
    for (size_t j = 0; j < k; ++j) {
      if (j != i) {
        meters[j].AddBytesReceived(bytes);
      }
    }
  }
  std::map<std::string, size_t> presence;  // ciphertext -> #parties holding it
  for (size_t i = 0; i < k; ++i) {
    const Party& party = parties[i];
    std::map<std::string, size_t> local;  // multiset within one party
    {
      // Each party scans its own ciphertexts; that cost is the party's.
      PartyComputeTimer timer(meters[i]);
      for (const BigUint& element : party.dataset) {
        ++local[element.ToHex()];
      }
    }
    // The simulation merges the broadcasts once; charge the counting party.
    PartyComputeTimer timer(meters[0]);
    for (const auto& [ciphertext, count] : local) {
      (void)count;  // Disambiguated elements are unique per party.
      ++presence[ciphertext];
    }
  }
  PsopResult result;
  {
    PartyComputeTimer timer(meters[0]);
    result.union_size = presence.size();
    for (const auto& [ciphertext, count] : presence) {
      if (count == k) {
        ++result.intersection;
      }
    }
  }
  result.jaccard = result.union_size == 0
                       ? 0.0
                       : static_cast<double>(result.intersection) /
                             static_cast<double>(result.union_size);
  result.party_stats.reserve(k);
  for (Party& party : parties) {
    result.party_stats.push_back(party.stats);
  }
  return result;
}

Result<PsopResult> RunPsopWithMinHash(const std::vector<std::vector<std::string>>& datasets,
                                      size_t m, const PsopOptions& options) {
  if (m == 0) {
    return InvalidArgumentError("RunPsopWithMinHash: m must be > 0");
  }
  if (m > UINT32_MAX) {
    return InvalidArgumentError("RunPsopWithMinHash: m too large");
  }
  INDAAS_TRACE_SPAN("pia.psop.minhash");
  // All parties derive the same register hashes from the protocol seed (as
  // they would agree on hash functions out of band). Sampling reuses the
  // sketch engine's arg-min, so the chosen elements match the registers the
  // sketch-exchange mode would ship — and are stable across runs and hosts.
  sketch::SketchParams params;
  params.k = static_cast<uint32_t>(m);
  params.seed = options.seed ^ 0x4D696E4861736821ULL;
  std::vector<std::vector<std::string>> samples;
  samples.reserve(datasets.size());
  std::vector<uint32_t> registers(m);
  std::vector<uint32_t> argmin;
  for (const std::vector<std::string>& dataset : datasets) {
    if (dataset.empty()) {
      return InvalidArgumentError("RunPsopWithMinHash: empty dataset");
    }
    sketch::BuildSketch(params, dataset, registers.data(), &argmin);
    std::vector<std::string> sample;
    sample.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      // arg-min element under register hash i, tagged with the register
      // index so index-i entries only match index-i entries.
      sample.push_back(StrFormat("%zu#", i) + dataset[argmin[i]]);
    }
    samples.push_back(std::move(sample));
  }
  INDAAS_ASSIGN_OR_RETURN(PsopResult result, RunPsop(samples, options));
  // Jaccard estimate is |∩ samples| / m (§4.2.4), not intersection/union.
  result.jaccard = static_cast<double>(result.intersection) / static_cast<double>(m);
  return result;
}

uint64_t PsopSketchSeed(uint64_t protocol_seed) {
  return protocol_seed ^ 0x536B657463682121ULL;  // "Sketch!!"
}

Result<PsopResult> RunPsopWithSketch(const std::vector<std::vector<std::string>>& datasets,
                                     uint32_t sketch_k, const PsopOptions& options) {
  const size_t k = datasets.size();
  if (k < 2) {
    return InvalidArgumentError("RunPsopWithSketch: need at least two parties");
  }
  if (sketch_k == 0) {
    return InvalidArgumentError("RunPsopWithSketch: sketch_k must be > 0");
  }
  for (const std::vector<std::string>& dataset : datasets) {
    if (dataset.empty()) {
      return InvalidArgumentError("RunPsopWithSketch: empty dataset");
    }
  }
  INDAAS_TRACE_SPAN_NAMED(span, "pia.psop.sketch");
  span.Annotate("parties", std::to_string(k));

  std::vector<PartyStats> stats(k);
  std::vector<PartyMeter> meters;
  meters.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    meters.emplace_back(&stats[i], "sketch");
  }

  sketch::SketchParams params;
  params.k = sketch_k;
  params.seed = PsopSketchSeed(options.seed);
  sketch::SketchArena arena(sketch_k, k);
  {
    INDAAS_TRACE_SPAN("pia.psop.sketch.build");
    for (size_t i = 0; i < k; ++i) {
      PartyComputeTimer timer(meters[i]);
      sketch::BuildSketch(params, datasets[i], arena.At(i));
    }
  }

  // Ring all-gather: k-1 hops, each party forwarding one fixed-size sketch
  // per hop, after which everyone holds all k register arrays.
  const size_t hop_bytes = kSketchHopOverheadBytes + sketch::SketchBytes(sketch_k);
  for (size_t hop = 0; hop + 1 < k; ++hop) {
    for (size_t i = 0; i < k; ++i) {
      meters[i].AddBytesSent(hop_bytes);
      meters[(i + 1) % k].AddBytesReceived(hop_bytes);
    }
  }

  PsopResult result;
  {
    // Every party counts locally; the simulation does it once and charges
    // party 0, mirroring RunPsop's counting convention.
    PartyComputeTimer timer(meters[0]);
    size_t agree = 0;
    for (uint32_t r = 0; r < sketch_k; ++r) {
      const uint32_t v = arena.At(0)[r];
      bool all = true;
      for (size_t i = 1; i < k && all; ++i) {
        all = arena.At(i)[r] == v;
      }
      agree += all;
    }
    result.intersection = agree;
    result.union_size = sketch_k;
    result.jaccard = static_cast<double>(agree) / static_cast<double>(sketch_k);
  }
  result.party_stats = stats;
  return result;
}

}  // namespace indaas
