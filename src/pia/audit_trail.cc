#include "src/pia/audit_trail.h"

#include <algorithm>

#include "src/crypto/digest.h"

namespace indaas {

std::string CanonicalDatasetEncoding(const std::vector<std::string>& dataset) {
  std::vector<std::string> sorted = dataset;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const std::string& element : sorted) {
    // Length prefix prevents ambiguity between {"ab","c"} and {"a","bc"}.
    uint64_t length = element.size();
    for (int shift = 56; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>(length >> shift));
    }
    out += element;
  }
  return out;
}

std::string CommitDataset(const std::vector<std::string>& dataset, uint64_t nonce) {
  std::string payload = CanonicalDatasetEncoding(dataset);
  payload += "||nonce:";
  for (int shift = 56; shift >= 0; shift -= 8) {
    payload.push_back(static_cast<char>(nonce >> shift));
  }
  return DigestToHex(Sha256(payload));
}

bool VerifyDatasetCommitment(const std::vector<std::string>& dataset, uint64_t nonce,
                             const std::string& commitment_hex) {
  return CommitDataset(dataset, nonce) == commitment_hex;
}

}  // namespace indaas
