// P-SOP: private set intersection cardinality over commutative encryption
// (Vaidya–Clifton, as adopted by the paper in §4.2.2/§6.1.2).
//
// All k parties form a logical ring and share a hash function and a
// commutative-encryption group. Each party hashes its (multiset-
// disambiguated) elements into the group, encrypts them under its own key,
// permutes them, and forwards to its ring successor; after k hops every
// dataset is encrypted under *all* keys, at which point equal plaintexts have
// equal ciphertexts and the parties can count |∩ S_i| and |∪ S_i| — hence the
// Jaccard similarity — without seeing each other's elements.
//
// The simulation runs all parties in-process but performs every cryptographic
// operation for real and accounts every byte that would cross the network.

#ifndef SRC_PIA_PSOP_H_
#define SRC_PIA_PSOP_H_

#include <string>
#include <vector>

#include "src/crypto/commutative.h"
#include "src/crypto/digest.h"
#include "src/pia/protocol_stats.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

struct PsopOptions {
  HashAlgorithm hash = HashAlgorithm::kSha256;
  // Group size in bits for CommutativeGroup::CreateWellKnown. The paper's
  // prototype used 1024-bit keys; smaller sizes speed up tests.
  size_t group_bits = 1024;
  uint64_t seed = 1;
};

struct PsopResult {
  size_t intersection = 0;  // |S_0 ∩ ... ∩ S_{k-1}| (multiset-aware)
  size_t union_size = 0;    // |S_0 ∪ ... ∪ S_{k-1}|
  double jaccard = 0.0;     // intersection / union
  std::vector<PartyStats> party_stats;  // one entry per party
  // Degraded-session marking (socket-backed rings with peer-failure
  // recovery enabled): the original ring indices that were ejected after a
  // mid-session fault, and how many ring reformations it took to finish.
  // An empty `excluded` list is a pristine full-ring result. A degraded
  // result's counts cover only the surviving parties — it is a *partial*
  // audit and every consumer must surface the exclusions, never present it
  // as a full k-party answer.
  std::vector<uint32_t> excluded;
  uint32_t recovery_attempts = 0;

  bool degraded() const { return !excluded.empty(); }
};

// Multiset disambiguation (§4.2.2): occurrence t of element e becomes
// "e||t", making every party's elements unique while preserving multiset
// intersection semantics. Shared with the socket-backed peers so both
// engines hash identical plaintexts.
std::vector<std::string> DisambiguateMultiset(const std::vector<std::string>& elements);

// Runs the protocol over the parties' datasets (one vector<string> each).
// Requires >= 2 parties; datasets may contain duplicates (handled via the
// e||1..e||t disambiguation from §4.2.2).
Result<PsopResult> RunPsop(const std::vector<std::vector<std::string>>& datasets,
                           const PsopOptions& options = {});

// MinHash-compressed variant (§4.2.4): each party first reduces its set to an
// m-element MinHash sample, then runs P-SOP on the samples; Jaccard is
// estimated as |∩| / m. Far cheaper for large sets, at accuracy O(1/sqrt(m)).
// Sampling is the arg-min of the src/sketch register hashes, so the sampled
// elements — like the registers themselves — are identical across runs and
// hosts for a given seed (tests/pia_test.cc cross-checks the two).
Result<PsopResult> RunPsopWithMinHash(const std::vector<std::vector<std::string>>& datasets,
                                      size_t m, const PsopOptions& options = {});

// Seed every sketch-exchange party derives from the protocol seed; shared
// between the in-process engine below and the socket-backed peers
// (src/svc/pia_peer.cc) so both produce byte-identical registers.
uint64_t PsopSketchSeed(uint64_t protocol_seed);

// Per-hop framing overhead the in-process simulation charges on top of the
// raw register bytes (origin + length header; the socket engine accounts
// real frame bytes instead).
inline constexpr size_t kSketchHopOverheadBytes = 8;

// Sketch-exchange variant (DESIGN.md §8): each party compresses its set to a
// sketch_k-register MinHash sketch and the ring all-gathers the sketches in
// k-1 hops — no commutative encryption at all. Jaccard is estimated as the
// fraction of registers on which *all* parties agree (the k-way estimator;
// for two parties this is the classic MinHash estimate, error ~1/sqrt(k)).
// Bytes on the wire are fixed at ~4*sketch_k per party per hop regardless of
// set size. Privacy is weaker than encrypted P-SOP: peers see one-way hashed
// registers rather than ciphertexts, which leaks membership to an adversary
// who can enumerate the element universe — the report flags the mode
// accordingly. Result fields: intersection = #agreeing registers,
// union_size = sketch_k, jaccard = intersection / sketch_k.
Result<PsopResult> RunPsopWithSketch(const std::vector<std::vector<std::string>>& datasets,
                                     uint32_t sketch_k, const PsopOptions& options = {});

}  // namespace indaas

#endif  // SRC_PIA_PSOP_H_
