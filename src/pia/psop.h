// P-SOP: private set intersection cardinality over commutative encryption
// (Vaidya–Clifton, as adopted by the paper in §4.2.2/§6.1.2).
//
// All k parties form a logical ring and share a hash function and a
// commutative-encryption group. Each party hashes its (multiset-
// disambiguated) elements into the group, encrypts them under its own key,
// permutes them, and forwards to its ring successor; after k hops every
// dataset is encrypted under *all* keys, at which point equal plaintexts have
// equal ciphertexts and the parties can count |∩ S_i| and |∪ S_i| — hence the
// Jaccard similarity — without seeing each other's elements.
//
// The simulation runs all parties in-process but performs every cryptographic
// operation for real and accounts every byte that would cross the network.

#ifndef SRC_PIA_PSOP_H_
#define SRC_PIA_PSOP_H_

#include <string>
#include <vector>

#include "src/crypto/commutative.h"
#include "src/crypto/digest.h"
#include "src/pia/protocol_stats.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace indaas {

struct PsopOptions {
  HashAlgorithm hash = HashAlgorithm::kSha256;
  // Group size in bits for CommutativeGroup::CreateWellKnown. The paper's
  // prototype used 1024-bit keys; smaller sizes speed up tests.
  size_t group_bits = 1024;
  uint64_t seed = 1;
};

struct PsopResult {
  size_t intersection = 0;  // |S_0 ∩ ... ∩ S_{k-1}| (multiset-aware)
  size_t union_size = 0;    // |S_0 ∪ ... ∪ S_{k-1}|
  double jaccard = 0.0;     // intersection / union
  std::vector<PartyStats> party_stats;  // one entry per party
};

// Multiset disambiguation (§4.2.2): occurrence t of element e becomes
// "e||t", making every party's elements unique while preserving multiset
// intersection semantics. Shared with the socket-backed peers so both
// engines hash identical plaintexts.
std::vector<std::string> DisambiguateMultiset(const std::vector<std::string>& elements);

// Runs the protocol over the parties' datasets (one vector<string> each).
// Requires >= 2 parties; datasets may contain duplicates (handled via the
// e||1..e||t disambiguation from §4.2.2).
Result<PsopResult> RunPsop(const std::vector<std::vector<std::string>>& datasets,
                           const PsopOptions& options = {});

// MinHash-compressed variant (§4.2.4): each party first reduces its set to an
// m-element MinHash sample, then runs P-SOP on the samples; Jaccard is
// estimated as |∩| / m. Far cheaper for large sets, at accuracy O(1/sqrt(m)).
Result<PsopResult> RunPsopWithMinHash(const std::vector<std::vector<std::string>>& datasets,
                                      size_t m, const PsopOptions& options = {});

}  // namespace indaas

#endif  // SRC_PIA_PSOP_H_
