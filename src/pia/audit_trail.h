// PIA audit trail (paper §5.2, "trust but leave an audit trail").
//
// Dishonest providers could under-report their component-sets to look more
// independent. The paper's pragmatic countermeasure: providers commit to the
// data they fed into the protocol; a specially-authorized meta-auditor can
// later demand the opening and check it. This module provides the
// commitment scheme (SHA-256 over a canonical serialization plus a secret
// nonce) and the meta-audit check.

#ifndef SRC_PIA_AUDIT_TRAIL_H_
#define SRC_PIA_AUDIT_TRAIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace indaas {

// Canonical, order-insensitive serialization of a dataset (sorted, length-
// prefixed elements) — two honest serializations of the same multiset are
// byte-identical.
std::string CanonicalDatasetEncoding(const std::vector<std::string>& dataset);

// Hex SHA-256 commitment to (dataset, nonce). The provider publishes this
// when the protocol runs and keeps (dataset, nonce) in its records.
std::string CommitDataset(const std::vector<std::string>& dataset, uint64_t nonce);

// Meta-audit check: does the provider's retained (dataset, nonce) open the
// published commitment?
bool VerifyDatasetCommitment(const std::vector<std::string>& dataset, uint64_t nonce,
                             const std::string& commitment_hex);

}  // namespace indaas

#endif  // SRC_PIA_AUDIT_TRAIL_H_
