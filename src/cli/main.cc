// Entry point for the `indaas` command-line tool.

#include "src/cli/commands.h"

int main(int argc, char** argv) { return indaas::RunCli(argc, argv); }
