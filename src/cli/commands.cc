#include "src/cli/commands.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "src/acquire/apt_sim.h"
#include "src/acquire/lshw_sim.h"
#include "src/acquire/nsdminer_sim.h"
#include "src/agent/agent.h"
#include "src/agent/report_diff.h"
#include "src/deps/cvss.h"
#include "src/obs/export.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_merge.h"
#include "src/graph/fault_graph.h"
#include "src/graph/serialize.h"
#include "src/net/chaos.h"
#include "src/net/socket.h"
#include "src/sia/builder.h"
#include "src/sia/importance.h"
#include "src/sia/whatif.h"
#include "src/svc/client.h"
#include "src/svc/pia_peer.h"
#include "src/svc/server.h"
#include "src/topology/case_study.h"
#include "src/topology/fat_tree.h"
#include "src/util/file.h"
#include "src/util/flags.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace indaas {
namespace {

// "S1,S2;S3,S4" -> {{S1,S2},{S3,S4}}.
Result<std::vector<std::vector<std::string>>> ParseDeployments(const std::string& spec) {
  std::vector<std::vector<std::string>> out;
  for (const std::string& group : SplitAndTrim(spec, ';')) {
    std::vector<std::string> servers = SplitAndTrim(group, ',');
    if (servers.empty()) {
      return InvalidArgumentError("empty deployment in '" + spec + "'");
    }
    out.push_back(std::move(servers));
  }
  if (out.empty()) {
    return InvalidArgumentError("no deployments given (use --deployments=\"S1,S2;S1,S3\")");
  }
  return out;
}

// Builds the selected infrastructure and returns its topology plus the list
// of auditable server names.
Result<DataCenterTopology> BuildInfra(const std::string& infra,
                                      std::vector<std::string>* servers) {
  if (infra == "case6a") {
    INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo, BuildCaseStudyDatacenter(33, 1));
    for (uint32_t r = 1; r <= 33; ++r) {
      servers->push_back(StrFormat("rack%u-srv1", r));
    }
    return topo;
  }
  if (infra == "lab") {
    INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo, BuildLabCloud());
    for (int i = 1; i <= 4; ++i) {
      servers->push_back(StrFormat("Server%d", i));
    }
    return topo;
  }
  if (StartsWith(infra, "fat")) {
    char* end = nullptr;
    long ports = std::strtol(infra.c_str() + 3, &end, 10);
    if (*end != '\0' || ports < 4) {
      return InvalidArgumentError("bad fat-tree spec '" + infra + "' (use e.g. fat16)");
    }
    INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo,
                            BuildFatTree(static_cast<uint32_t>(ports)));
    // One server per pod keeps the default collection small.
    for (long p = 0; p < ports; ++p) {
      servers->push_back(StrFormat("pod%ld-srv0-0", p));
    }
    return topo;
  }
  return InvalidArgumentError("unknown --infra '" + infra + "' (case6a | lab | fat<k>)");
}

// Observability outputs shared by the audit-style commands.
struct ObsOutputs {
  std::string metrics_path;
  std::string trace_path;
};

void AddObsFlags(FlagSet& flags, ObsOutputs& obs) {
  flags.AddString("metrics-out", &obs.metrics_path,
                  "write a JSON metrics dump (counters/gauges/histograms/stages) here");
  flags.AddString("trace-out", &obs.trace_path,
                  "write a Chrome trace-event file (chrome://tracing, Perfetto) here");
}

// Arms the registry and span recorder for a fresh run. Tracing is needed for
// either output: the metrics dump's "stages" section aggregates spans.
void BeginObs(const ObsOutputs& out) {
  if (out.metrics_path.empty() && out.trace_path.empty()) {
    return;
  }
  obs::MetricsRegistry::Global().Reset();
  obs::TraceRecorder::Global().Reset();
  obs::TraceRecorder::Global().SetEnabled(true);
}

// Writes the requested dumps and prints the stage-timing table.
Status FinishObs(const ObsOutputs& out) {
  if (out.metrics_path.empty() && out.trace_path.empty()) {
    return Status::Ok();
  }
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(false);
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  std::vector<obs::StageStat> stages = obs::AggregateStages(spans);
  if (!out.metrics_path.empty()) {
    INDAAS_RETURN_IF_ERROR(WriteFile(
        out.metrics_path, obs::MetricsToJson(obs::MetricsRegistry::Global().Snapshot(), stages)));
  }
  if (!out.trace_path.empty()) {
    INDAAS_RETURN_IF_ERROR(WriteFile(out.trace_path, obs::SpansToChromeTrace(spans)));
  }
  if (!stages.empty()) {
    std::printf("\n%s", obs::RenderStageTable(stages).c_str());
  }
  if (!out.metrics_path.empty()) {
    std::printf("wrote metrics -> %s\n", out.metrics_path.c_str());
  }
  if (!out.trace_path.empty()) {
    std::printf("wrote Chrome trace (%zu spans) -> %s\n", spans.size(), out.trace_path.c_str());
  }
  if (recorder.dropped() > 0) {
    INDAAS_SLOG(Warn, "cli.spans_dropped").Kv("dropped", recorder.dropped());
  }
  return Status::Ok();
}

}  // namespace

Status RunCollectCommand(int argc, char** argv) {
  std::string infra = "case6a";
  std::string out_path = "depdb.txt";
  int64_t flows = 60;
  int64_t seed = 1;
  bool with_software = false;
  FlagSet flags;
  flags.AddString("infra", &infra, "infrastructure: case6a | lab | fat<k>");
  flags.AddString("out", &out_path, "output DepDB file (Table 1 format)");
  flags.AddInt("flows", &flows, "traffic flows per server for NSDMiner");
  flags.AddInt("seed", &seed, "RNG seed");
  flags.AddBool("with-software", &with_software, "install the Riak stack on every server");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));

  std::vector<std::string> servers;
  INDAAS_ASSIGN_OR_RETURN(DataCenterTopology topo, BuildInfra(infra, &servers));

  NsdMinerSim miner(3);
  LshwSim lshw;
  PackageUniverse universe = PackageUniverse::KeyValueStoreUniverse();
  AptRdependsSim apt(&universe);
  Rng rng(static_cast<uint64_t>(seed));
  for (const std::string& server : servers) {
    INDAAS_ASSIGN_OR_RETURN(
        std::vector<FlowRecord> generated,
        GenerateTraffic(topo, server, "Internet", static_cast<size_t>(flows), rng));
    miner.IngestFlows(generated);
    lshw.RegisterMachine(server, LshwSim::RandomSpec(rng));
    if (with_software) {
      INDAAS_RETURN_IF_ERROR(apt.InstallProgram(server, "riak"));
    }
  }
  DepDb db;
  std::vector<const DependencyAcquisitionModule*> modules = {&miner, &lshw};
  if (with_software) {
    modules.push_back(&apt);
  }
  INDAAS_RETURN_IF_ERROR(RunAcquisition(modules, servers, db));
  INDAAS_RETURN_IF_ERROR(WriteFile(out_path, db.ExportText()));
  std::printf("collected %zu records (%zu network, %zu hardware, %zu software) -> %s\n",
              db.TotalCount(), db.NetworkCount(), db.HardwareCount(), db.SoftwareCount(),
              out_path.c_str());
  return Status::Ok();
}

Status RunAuditCommand(int argc, char** argv) {
  std::string depdb_path;
  std::string baseline_path;
  std::string deployments_spec;
  std::string algorithm = "minimal";
  std::string metric = "size";
  std::string cvss_path;
  std::string remote;
  int64_t rounds = 100000;
  int64_t seed = 1;
  int64_t parallel = 1;
  FlagSet flags;
  flags.AddString("depdb", &depdb_path, "DepDB file to audit");
  flags.AddString("remote", &remote,
                  "audit on a remote `indaas serve` instance at host:port "
                  "(ships --depdb there first)");
  flags.AddString("baseline", &baseline_path, "older DepDB file; prints a regression diff");
  flags.AddString("deployments", &deployments_spec, "candidate deployments: \"S1,S2;S1,S3\"");
  flags.AddString("algorithm", &algorithm, "minimal | sampling");
  flags.AddString("metric", &metric, "size | prob");
  flags.AddString("cvss", &cvss_path, "optional CVSS feed file for software probabilities");
  flags.AddInt("rounds", &rounds, "sampling rounds");
  flags.AddInt("seed", &seed, "sampling seed");
  flags.AddInt("parallel", &parallel, "audit this many deployments concurrently");
  ObsOutputs obs_out;
  AddObsFlags(flags, obs_out);
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (depdb_path.empty()) {
    return InvalidArgumentError("--depdb is required");
  }
  INDAAS_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> deployments,
                          ParseDeployments(deployments_spec));

  AuditSpecification spec;
  spec.candidate_deployments = std::move(deployments);
  if (algorithm == "sampling") {
    spec.algorithm = RgAlgorithm::kSampling;
  } else if (algorithm != "minimal") {
    return InvalidArgumentError("--algorithm must be minimal or sampling");
  }
  if (metric == "prob") {
    spec.metric = RankingMetric::kFailureProbability;
  } else if (metric != "size") {
    return InvalidArgumentError("--metric must be size or prob");
  }
  spec.sampling_rounds = static_cast<size_t>(rounds);
  spec.seed = static_cast<uint64_t>(seed);
  spec.parallel_deployments = static_cast<size_t>(std::max<int64_t>(1, parallel));

  if (!remote.empty()) {
    // Remote audits run against the server's agent; the options that
    // configure a local agent don't apply.
    if (!baseline_path.empty() || !cvss_path.empty()) {
      return InvalidArgumentError("--baseline and --cvss are not supported with --remote");
    }
    INDAAS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::ParseEndpoint(remote));
    INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(depdb_path));
    BeginObs(obs_out);
    INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client, svc::AuditClient::Connect(endpoint));
    INDAAS_ASSIGN_OR_RETURN(svc::ImportAck ack, client.ImportDepDb(text));
    std::printf("imported DepDB into %s (%llu network, %llu hardware, %llu software)\n",
                endpoint.ToString().c_str(), static_cast<unsigned long long>(ack.network),
                static_cast<unsigned long long>(ack.hardware),
                static_cast<unsigned long long>(ack.software));
    INDAAS_ASSIGN_OR_RETURN(SiaAuditReport report, client.AuditStructural(spec));
    std::printf("%s", RenderSiaReport(report).c_str());
    return FinishObs(obs_out);
  }

  FailureProbabilityModel model = FailureProbabilityModel::GillEtAlDefaults();
  if (!cvss_path.empty()) {
    INDAAS_ASSIGN_OR_RETURN(std::string feed, ReadFile(cvss_path));
    INDAAS_RETURN_IF_ERROR(LoadCvssFeed(feed, model));
  }

  auto run_audit = [&](const std::string& path) -> Result<SiaAuditReport> {
    AuditingAgent agent;
    agent.SetProbabilityModel(&model);
    INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
    INDAAS_RETURN_IF_ERROR(agent.depdb().ImportText(text));
    return agent.AuditStructural(spec);
  };

  BeginObs(obs_out);
  INDAAS_ASSIGN_OR_RETURN(SiaAuditReport report, run_audit(depdb_path));
  std::printf("%s", RenderSiaReport(report).c_str());
  if (!baseline_path.empty()) {
    INDAAS_ASSIGN_OR_RETURN(SiaAuditReport baseline, run_audit(baseline_path));
    AuditDiff diff = DiffSiaReports(baseline, report);
    std::printf("\n=== changes since baseline ===\n%s", RenderAuditDiff(diff).c_str());
  }
  return FinishObs(obs_out);
}

Status RunDotCommand(int argc, char** argv) {
  std::string depdb_path;
  std::string deployment_spec;
  FlagSet flags;
  flags.AddString("depdb", &depdb_path, "DepDB file");
  flags.AddString("deployment", &deployment_spec, "servers, e.g. \"S1,S2\"");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (depdb_path.empty() || deployment_spec.empty()) {
    return InvalidArgumentError("--depdb and --deployment are required");
  }
  DepDb db;
  INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(depdb_path));
  INDAAS_RETURN_IF_ERROR(db.ImportText(text));
  std::vector<std::string> servers = SplitAndTrim(deployment_spec, ',');
  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, BuildDeploymentFaultGraph(db, servers));
  std::printf("%s", graph.ToDot("deployment").c_str());
  return Status::Ok();
}

Status RunGraphCommand(int argc, char** argv) {
  std::string depdb_path;
  std::string deployment_spec;
  std::string out_path;
  FlagSet flags;
  flags.AddString("depdb", &depdb_path, "DepDB file");
  flags.AddString("deployment", &deployment_spec, "servers, e.g. \"S1,S2\"");
  flags.AddString("out", &out_path, "output fault-graph file (stdout if empty)");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (depdb_path.empty() || deployment_spec.empty()) {
    return InvalidArgumentError("--depdb and --deployment are required");
  }
  DepDb db;
  INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(depdb_path));
  INDAAS_RETURN_IF_ERROR(db.ImportText(text));
  std::vector<std::string> servers = SplitAndTrim(deployment_spec, ',');
  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, BuildDeploymentFaultGraph(db, servers));
  INDAAS_ASSIGN_OR_RETURN(std::string serialized, SerializeFaultGraph(graph));
  if (out_path.empty()) {
    std::printf("%s", serialized.c_str());
  } else {
    INDAAS_RETURN_IF_ERROR(WriteFile(out_path, serialized));
    std::printf("wrote %zu-node fault graph -> %s\n", graph.NodeCount(), out_path.c_str());
  }
  return Status::Ok();
}

Status RunWhatIfCommand(int argc, char** argv) {
  std::string graph_path;
  std::string fail_spec;
  FlagSet flags;
  flags.AddString("graph", &graph_path, "fault-graph file (from `indaas graph`)");
  flags.AddString("fail", &fail_spec, "components to fail, comma separated");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (graph_path.empty()) {
    return InvalidArgumentError("--graph is required");
  }
  INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(graph_path));
  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, ParseFaultGraph(text));
  INDAAS_ASSIGN_OR_RETURN(WhatIfResult result,
                          SimulateFailures(graph, SplitAndTrim(fail_spec, ',')));
  std::printf("deployment %s\n", result.top_event_failed ? "FAILS" : "survives");
  for (const std::string& event : result.failed_events) {
    std::printf("  failed: %s\n", event.c_str());
  }
  return Status::Ok();
}

Status RunImportanceCommand(int argc, char** argv) {
  std::string graph_path;
  double default_prob = 0.01;
  FlagSet flags;
  flags.AddString("graph", &graph_path, "fault-graph file (from `indaas graph`)");
  flags.AddDouble("default-prob", &default_prob, "probability for unweighted events");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (graph_path.empty()) {
    return InvalidArgumentError("--graph is required");
  }
  INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(graph_path));
  INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, ParseFaultGraph(text));
  INDAAS_ASSIGN_OR_RETURN(MinimalRgResult groups, ComputeMinimalRiskGroups(graph));
  ImportanceOptions options;
  options.default_prob = default_prob;
  INDAAS_ASSIGN_OR_RETURN(std::vector<ComponentImportance> ranked,
                          RankComponentImportance(graph, groups.groups, options));
  std::printf("%-40s %6s %10s %12s\n", "component", "in-RGs", "Birnbaum", "criticality");
  for (const ComponentImportance& entry : ranked) {
    std::printf("%-40s %6zu %10.4f %12.4f\n", entry.name.c_str(), entry.rg_memberships,
                entry.birnbaum, entry.criticality);
  }
  return Status::Ok();
}

Status RunPiaCommand(int argc, char** argv) {
  std::string sets_path;
  std::string depdbs_spec;
  std::string peers_spec;
  std::string method_name;
  bool minhash = false;
  bool all_pairs = false;
  bool allow_degraded = false;
  int64_t m = 256;
  int64_t sketch_k = 256;
  int64_t lsh_bands = 64;
  int64_t lsh_rows = 4;
  int64_t top = 10;
  int64_t self_index = 0;
  int64_t seed = 1;
  int64_t group_bits = 768;
  int64_t max_redundancy = 3;
  int64_t parallel = 1;
  FlagSet flags;
  flags.AddString("sets", &sets_path, "provider file: '<name>: c1, c2, ...' per line");
  flags.AddString("depdbs", &depdbs_spec,
                  "providers from DepDB files: \"Cloud1=a.txt;Cloud2=b.txt\" "
                  "(normalized per §4.2.3)");
  flags.AddString("peers", &peers_spec,
                  "socket mode: the P-SOP ring as \"hostA:p1,hostB:p2,...\" "
                  "(one `indaas pia` process per peer)");
  flags.AddString("method", &method_name,
                  "exact | minhash | sketch (sketch ships MinHash registers "
                  "instead of running encrypted P-SOP)");
  flags.AddBool("minhash", &minhash, "MinHash-compress sets before P-SOP (alias "
                "for --method=minhash)");
  flags.AddBool("all-pairs", &all_pairs,
                "rank every provider pair via sketches + LSH banding "
                "(DESIGN.md §8; in-process mode only)");
  flags.AddBool("allow-degraded", &allow_degraded,
                "socket mode: survive peer deaths by reforming the ring among "
                "the survivors and returning a partial (degraded) result");
  flags.AddInt("m", &m, "MinHash sample size");
  flags.AddInt("sketch-k", &sketch_k, "registers per sketch (--method=sketch / --all-pairs)");
  flags.AddInt("lsh-bands", &lsh_bands, "LSH bands for --all-pairs candidate generation");
  flags.AddInt("lsh-rows", &lsh_rows, "LSH rows per band for --all-pairs");
  flags.AddInt("top", &top, "riskiest pairs to keep in the --all-pairs report (0 = all)");
  flags.AddInt("self", &self_index, "socket mode: this peer's index into --peers");
  flags.AddInt("seed", &seed,
               "shared session seed (socket key material and sketch permutations)");
  flags.AddInt("group-bits", &group_bits, "commutative group bits");
  flags.AddInt("max-redundancy", &max_redundancy, "largest deployment size to rank");
  flags.AddInt("parallel", &parallel, "run this many protocol instances concurrently");
  ObsOutputs obs_out;
  AddObsFlags(flags, obs_out);
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (sets_path.empty() == depdbs_spec.empty()) {
    return InvalidArgumentError("exactly one of --sets or --depdbs is required");
  }
  PiaMethod method = minhash ? PiaMethod::kPsopMinHash : PiaMethod::kPsopExact;
  if (!method_name.empty()) {
    if (method_name == "exact") {
      method = PiaMethod::kPsopExact;
    } else if (method_name == "minhash") {
      method = PiaMethod::kPsopMinHash;
    } else if (method_name == "sketch") {
      method = PiaMethod::kSketch;
    } else {
      return InvalidArgumentError("--method must be exact, minhash or sketch (got '" +
                                  method_name + "')");
    }
  }
  if (sketch_k < 1 || sketch_k > UINT16_MAX) {
    return InvalidArgumentError(
        StrFormat("--sketch-k=%lld is outside [1, %u]",
                  static_cast<long long>(sketch_k), UINT16_MAX));
  }
  if (lsh_bands < 0 || lsh_bands > UINT16_MAX || lsh_rows < 0 || lsh_rows > UINT16_MAX) {
    return InvalidArgumentError("--lsh-bands/--lsh-rows must be in [0, 65535]");
  }
  std::vector<CloudProvider> providers;
  if (!sets_path.empty()) {
    INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(sets_path));
    for (const std::string& raw_line : Split(text, '\n')) {
      std::string_view line = Trim(raw_line);
      if (line.empty() || line.front() == '#') {
        continue;
      }
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return ParseError("provider line missing ':' — " + std::string(line));
      }
      CloudProvider provider;
      provider.name = std::string(Trim(line.substr(0, colon)));
      provider.components = SplitAndTrim(line.substr(colon + 1), ',');
      providers.push_back(std::move(provider));
    }
  } else {
    for (const std::string& entry : SplitAndTrim(depdbs_spec, ';')) {
      size_t eq = entry.find('=');
      if (eq == std::string::npos) {
        return InvalidArgumentError("--depdbs entries must be '<name>=<file>': " + entry);
      }
      DepDb db;
      INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(entry.substr(eq + 1)));
      INDAAS_RETURN_IF_ERROR(db.ImportText(text));
      providers.push_back(MakeProviderFromDepDb(entry.substr(0, eq), db));
    }
  }
  if (!peers_spec.empty()) {
    // Socket mode: this process is ring peer `self` and audits its own
    // provider set against the others over TCP.
    if (all_pairs) {
      return InvalidArgumentError(
          "--all-pairs is the in-process auditor view; drop --peers to use it");
    }
    if (method == PiaMethod::kPsopMinHash) {
      return InvalidArgumentError(
          "--method=minhash is in-process only; socket rings run exact or sketch");
    }
    INDAAS_ASSIGN_OR_RETURN(std::vector<net::Endpoint> peers,
                            net::ParseEndpointList(peers_spec));
    if (peers.size() < 2) {
      return InvalidArgumentError("--peers needs at least two ring endpoints");
    }
    if (self_index < 0 || static_cast<size_t>(self_index) >= peers.size()) {
      return InvalidArgumentError(
          StrFormat("--self=%lld is out of the %zu-peer ring",
                    static_cast<long long>(self_index), peers.size()));
    }
    if (static_cast<size_t>(self_index) >= providers.size()) {
      return InvalidArgumentError(
          StrFormat("--self=%lld has no provider line in %s",
                    static_cast<long long>(self_index), sets_path.c_str()));
    }
    svc::PiaPeerOptions peer_options;
    peer_options.peers = std::move(peers);
    peer_options.self_index = static_cast<size_t>(self_index);
    peer_options.psop.group_bits = static_cast<size_t>(group_bits);
    peer_options.psop.seed = static_cast<uint64_t>(seed);
    peer_options.sketch_k = static_cast<uint32_t>(sketch_k);
    peer_options.allow_degraded = allow_degraded;
    const CloudProvider& self_provider = providers[static_cast<size_t>(self_index)];
    BeginObs(obs_out);
    INDAAS_ASSIGN_OR_RETURN(
        svc::PiaPeer peer,
        svc::PiaPeer::Listen(peer_options.peers[peer_options.self_index].port));
    const bool sketch_session = method == PiaMethod::kSketch;
    std::printf("peer %lld/%zu (%s) listening on port %u, running %s...\n",
                static_cast<long long>(self_index), peer_options.peers.size(),
                self_provider.name.c_str(), peer.listen_port(),
                sketch_session ? "sketch exchange" : "P-SOP");
    INDAAS_ASSIGN_OR_RETURN(
        PsopResult result,
        sketch_session ? peer.RunPsopWithSketch(self_provider.components, peer_options)
                       : peer.RunPsop(self_provider.components, peer_options));
    const PartyStats& stats = result.party_stats[peer_options.self_index];
    if (result.degraded()) {
      // Make a partial answer impossible to mistake for a full one: name the
      // peers whose sets the overlap estimate does NOT cover.
      std::string excluded_list;
      for (uint32_t excluded_peer : result.excluded) {
        if (!excluded_list.empty()) {
          excluded_list += ",";
        }
        excluded_list += StrFormat("%u", excluded_peer);
      }
      std::printf(
          "DEGRADED result: ring reformed %u time(s); peers {%s} excluded — "
          "the overlap below does not cover their sets\n",
          result.recovery_attempts, excluded_list.c_str());
    }
    std::printf("jaccard=%.6f intersection=%zu union=%zu\n", result.jaccard,
                result.intersection, result.union_size);
    std::printf("self: %.3fs compute, %zu encrypt ops, %zu B sent, %zu B received\n",
                stats.compute_seconds, stats.encrypt_ops, stats.bytes_sent,
                stats.bytes_received);
    return FinishObs(obs_out);
  }

  if (all_pairs) {
    // Provider-scale view: sketch every provider once, let LSH banding
    // nominate the candidate pairs, report the least independent first.
    PiaAllPairsOptions ap_options;
    ap_options.sketch.k = static_cast<uint32_t>(sketch_k);
    ap_options.sketch.seed = static_cast<uint64_t>(seed);
    ap_options.lsh.bands = static_cast<uint32_t>(lsh_bands);
    ap_options.lsh.rows = static_cast<uint32_t>(lsh_rows);
    ap_options.top = static_cast<size_t>(std::max<int64_t>(0, top));
    BeginObs(obs_out);
    INDAAS_ASSIGN_OR_RETURN(PiaAllPairsReport report,
                            RunAllPairsPiaAudit(providers, ap_options));
    std::printf("%s", RenderAllPairsReport(report).c_str());
    return FinishObs(obs_out);
  }

  PiaAuditOptions options;
  options.method = method;
  options.minhash_m = static_cast<size_t>(m);
  options.sketch_k = static_cast<uint32_t>(sketch_k);
  options.psop.group_bits = static_cast<size_t>(group_bits);
  options.psop.seed = static_cast<uint64_t>(seed);
  options.max_redundancy =
      static_cast<uint32_t>(std::min<int64_t>(max_redundancy, providers.size()));
  options.parallel_deployments = static_cast<size_t>(std::max<int64_t>(1, parallel));
  BeginObs(obs_out);
  AuditingAgent agent;
  INDAAS_ASSIGN_OR_RETURN(PiaAuditReport report, agent.AuditPrivate(providers, options));
  std::printf("%s", RenderPiaReport(report).c_str());
  return FinishObs(obs_out);
}

Status RunStatsCommand(int argc, char** argv) {
  std::string remote;
  std::string format = "text";
  FlagSet flags;
  flags.AddString("remote", &remote, "the `indaas serve` instance to scrape, host:port");
  flags.AddString("format", &format, "text | prometheus | json");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (remote.empty()) {
    return InvalidArgumentError("--remote is required (e.g. --remote=localhost:7341)");
  }
  if (format != "text" && format != "prometheus" && format != "json") {
    return InvalidArgumentError("--format must be text, prometheus or json");
  }
  INDAAS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::ParseEndpoint(remote));
  INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client, svc::AuditClient::Connect(endpoint));
  INDAAS_ASSIGN_OR_RETURN(svc::HealthStatus health, client.Health());
  INDAAS_ASSIGN_OR_RETURN(svc::ServerStats stats, client.GetStats());
  if (format == "prometheus") {
    std::printf("%s", obs::MetricsToPrometheus(stats.metrics).c_str());
    std::printf("# TYPE indaas_server_serving gauge\nindaas_server_serving %d\n",
                health.serving ? 1 : 0);
    std::printf("# TYPE indaas_server_uptime_seconds gauge\nindaas_server_uptime_seconds %.3f\n",
                static_cast<double>(stats.uptime_us) / 1e6);
    std::printf("# TYPE indaas_server_depdb_records gauge\nindaas_server_depdb_records %llu\n",
                static_cast<unsigned long long>(stats.depdb_records));
    return Status::Ok();
  }
  if (format == "json") {
    std::printf("%s", obs::MetricsToJson(stats.metrics).c_str());
    return Status::Ok();
  }
  std::printf("%s: %s, up %.1f s, %llu DepDB records\n", endpoint.ToString().c_str(),
              health.serving ? "serving" : "NOT serving",
              static_cast<double>(stats.uptime_us) / 1e6,
              static_cast<unsigned long long>(stats.depdb_records));
  std::printf("%s", obs::RenderMetricsText(stats.metrics).c_str());
  return Status::Ok();
}

Status RunDebugCommand(int argc, char** argv) {
  std::string remote;
  int64_t events = 32;
  int64_t top = 10;
  FlagSet flags;
  flags.AddString("remote", &remote, "the `indaas serve` instance to introspect, host:port");
  flags.AddInt("events", &events, "recent flight-recorder events to show");
  flags.AddInt("top", &top, "slowest retained RPCs to show");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (remote.empty()) {
    return InvalidArgumentError("--remote is required (e.g. --remote=localhost:7341)");
  }
  INDAAS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::ParseEndpoint(remote));
  INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client, svc::AuditClient::Connect(endpoint));
  INDAAS_ASSIGN_OR_RETURN(svc::DebugInfo info, client.GetDebugInfo());

  std::printf("%s: up %.1f s, mode=%s, %llu in flight\n", endpoint.ToString().c_str(),
              static_cast<double>(info.uptime_us) / 1e6,
              info.mode == 0 ? "reactor" : "threaded",
              static_cast<unsigned long long>(info.inflight_global));
  if (!info.shards.empty()) {
    std::printf("shards (%zu):\n", info.shards.size());
    for (const svc::DebugShard& shard : info.shards) {
      std::printf("  shard %u: %llu conns, %llu in flight%s\n", shard.index,
                  static_cast<unsigned long long>(shard.connections),
                  static_cast<unsigned long long>(shard.inflight),
                  shard.has_listener ? ", listening" : "");
    }
  }
  if (!info.connections.empty()) {
    std::printf("connections (%zu):\n", info.connections.size());
    for (const svc::DebugConnection& conn : info.connections) {
      std::printf(
          "  conn %llu shard=%u age=%.1fs in_buf=%lluB out_buf=%lluB inflight=%llu"
          " oldest_pending=%.3fs\n",
          static_cast<unsigned long long>(conn.id), conn.shard,
          static_cast<double>(conn.age_us) / 1e6,
          static_cast<unsigned long long>(conn.in_buffer_bytes),
          static_cast<unsigned long long>(conn.write_buffer_bytes),
          static_cast<unsigned long long>(conn.inflight),
          static_cast<double>(conn.oldest_pending_us) / 1e6);
    }
  }
  size_t event_count = std::min(info.events.size(), static_cast<size_t>(std::max<int64_t>(0, events)));
  if (event_count > 0) {
    std::printf("recent flight-recorder events (%zu of %zu):\n", event_count,
                info.events.size());
    for (size_t i = info.events.size() - event_count; i < info.events.size(); ++i) {
      const svc::DebugFlightEvent& e = info.events[i];
      std::printf("  t=%llu tid=%u %s a=%llu b=%llu code=%u",
                  static_cast<unsigned long long>(e.t_us), e.tid,
                  obs::FlightEventTypeName(static_cast<obs::FlightEventType>(e.type)),
                  static_cast<unsigned long long>(e.a), static_cast<unsigned long long>(e.b),
                  e.code);
      if (e.trace_id != 0) {
        std::printf(" trace=%llu", static_cast<unsigned long long>(e.trace_id));
      }
      std::printf("\n");
    }
  }
  size_t slow_count = std::min(info.slowest.size(), static_cast<size_t>(std::max<int64_t>(0, top)));
  if (slow_count > 0) {
    std::printf("slowest retained RPCs (%zu of %zu):\n", slow_count, info.slowest.size());
    for (size_t i = 0; i < slow_count; ++i) {
      const svc::DebugSlowRpc& rpc = info.slowest[i];
      std::printf("  %-12s %8.3f ms  %s%s conn=%llu req=%llu",
                  svc::MsgTypeName(static_cast<svc::MsgType>(rpc.rpc_type)),
                  rpc.total_s * 1e3,
                  obs::TailOutcomeName(static_cast<obs::TailOutcome>(rpc.outcome)),
                  rpc.ok ? "" : " (error)", static_cast<unsigned long long>(rpc.conn_id),
                  static_cast<unsigned long long>(rpc.request_id));
      if (rpc.trace_id != 0) {
        std::printf(" trace=%llu", static_cast<unsigned long long>(rpc.trace_id));
      }
      std::printf("\n    stages:");
      for (int s = 0; s < 6; ++s) {
        std::printf(" %s=%.3fms", obs::RpcStageName(static_cast<obs::RpcStage>(s)),
                    rpc.stage_s[s] * 1e3);
      }
      std::printf("\n");
    }
  }
  return Status::Ok();
}

Status RunProfileCommand(int argc, char** argv) {
  std::string remote;
  int64_t seconds = 5;
  int64_t hz = 99;
  bool alloc = true;
  std::string out_path;
  std::string format = "dump";
  FlagSet flags;
  flags.AddString("remote", &remote, "the `indaas serve` instance to profile, host:port");
  flags.AddInt("seconds", &seconds, "capture window length (1..60)");
  flags.AddInt("hz", &hz, "CPU sampling frequency (1..1000)");
  flags.AddBool("alloc", &alloc, "also capture allocation samples");
  flags.AddString("out", &out_path, "write the profile here (empty = stdout)");
  flags.AddString("format", &format,
                  "dump (symbolizable text for tools/symbolize_profile.py) | "
                  "collapsed (flamegraph.pl input, CPU samples, raw addresses) | "
                  "collapsed-alloc (flamegraph.pl input, allocation samples, "
                  "byte-weighted) | "
                  "chrome (trace-event JSON, feeds trace-merge)");
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (remote.empty()) {
    return InvalidArgumentError("--remote is required (e.g. --remote=localhost:7341)");
  }
  if (format != "dump" && format != "collapsed" && format != "collapsed-alloc" &&
      format != "chrome") {
    return InvalidArgumentError(
        "--format must be dump, collapsed, collapsed-alloc or chrome");
  }
  if (format == "collapsed-alloc" && !alloc) {
    return InvalidArgumentError("--format=collapsed-alloc requires --alloc=1");
  }
  if (seconds < 1 || seconds > svc::kMaxProfileSeconds) {
    return InvalidArgumentError(StrFormat("--seconds must be in [1, %u]",
                                          svc::kMaxProfileSeconds));
  }
  if (hz < 1 || hz > svc::kMaxProfileHz) {
    return InvalidArgumentError(StrFormat("--hz must be in [1, %u]", svc::kMaxProfileHz));
  }
  INDAAS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::ParseEndpoint(remote));
  INDAAS_ASSIGN_OR_RETURN(svc::AuditClient client, svc::AuditClient::Connect(endpoint));
  svc::ProfileRequest request;
  request.hz = static_cast<uint32_t>(hz);
  request.seconds = static_cast<uint32_t>(seconds);
  request.alloc = alloc;
  std::fprintf(stderr, "profiling %s for %lld s at %lld Hz...\n", remote.c_str(),
               static_cast<long long>(seconds), static_cast<long long>(hz));
  INDAAS_ASSIGN_OR_RETURN(svc::ProfileReply reply, client.GetProfile(request));

  std::string output;
  if (format == "dump") {
    output = std::move(reply.dump);
  } else {
    obs::ProfileData data;
    if (!obs::ParseProfileDumpText(reply.dump, &data)) {
      return ProtocolError("server returned an unparseable profile dump");
    }
    if (format == "collapsed") {
      output = obs::ProfileToCollapsed(data, /*alloc=*/false);
    } else if (format == "collapsed-alloc") {
      output = obs::ProfileToCollapsed(data, /*alloc=*/true);
    } else {
      output = obs::ProfileToChromeTrace(data);
    }
  }
  if (out_path.empty()) {
    std::printf("%s", output.c_str());
    return Status::Ok();
  }
  INDAAS_RETURN_IF_ERROR(WriteFile(out_path, output));
  obs::ProfileData parsed;
  if (obs::ParseProfileDumpText(reply.dump, &parsed)) {
    std::printf("captured %zu samples (%llu dropped, %llu truncated) over %.1f s -> %s\n",
                parsed.samples.size(), static_cast<unsigned long long>(parsed.dropped),
                static_cast<unsigned long long>(parsed.truncated_stacks),
                static_cast<double>(parsed.end_us - parsed.start_us) / 1e6, out_path.c_str());
    if (format == "dump") {
      std::printf("symbolize: python3 tools/symbolize_profile.py %s\n", out_path.c_str());
    }
  } else {
    std::printf("wrote %zu bytes -> %s\n", output.size(), out_path.c_str());
  }
  return Status::Ok();
}

Status RunTraceMergeCommand(int argc, char** argv) {
  // Positional inputs plus an optional --out: parsed by hand because the
  // FlagSet grammar is flags-only.
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (StartsWith(arg, "--out=")) {
      out_path = std::string(arg.substr(6));
    } else if (StartsWith(arg, "--")) {
      return InvalidArgumentError("unknown flag '" + std::string(arg) +
                                  "' (usage: trace-merge [--out=merged.json] a.json b.json ...)");
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.size() < 2) {
    return InvalidArgumentError("trace-merge needs at least two per-process trace files");
  }
  std::vector<obs::ProcessTrace> traces;
  traces.reserve(inputs.size());
  for (const std::string& path : inputs) {
    INDAAS_ASSIGN_OR_RETURN(std::string json, ReadFile(path));
    INDAAS_ASSIGN_OR_RETURN(obs::ProcessTrace trace, obs::ParseChromeTrace(json, path));
    traces.push_back(std::move(trace));
  }
  INDAAS_ASSIGN_OR_RETURN(std::string merged, obs::MergeChromeTraces(traces));
  if (out_path.empty()) {
    std::printf("%s", merged.c_str());
    return Status::Ok();
  }
  INDAAS_RETURN_IF_ERROR(WriteFile(out_path, merged));
  size_t spans = 0;
  for (const obs::ProcessTrace& trace : traces) {
    spans += trace.events.size();
  }
  std::printf("merged %zu spans from %zu processes -> %s\n", spans, traces.size(),
              out_path.c_str());
  return Status::Ok();
}

namespace {
// SIGINT/SIGTERM flip this; the serve loop polls it.
std::atomic<bool> g_serve_interrupted{false};
void HandleServeSignal(int) { g_serve_interrupted.store(true); }
}  // namespace

Status RunServeCommand(int argc, char** argv) {
  int64_t port = 7341;
  int64_t threads = 4;
  int64_t io_timeout_ms = 10000;
  std::string mode = "reactor";
  int64_t reactor_shards = 2;
  int64_t max_inflight = 256;
  int64_t max_inflight_per_conn = 64;
  int64_t backlog = 128;
  int64_t read_deadline_ms = 10000;
  int64_t slow_rpc_ms = 100;
  std::string admission = "adaptive";
  int64_t target_queue_delay_ms = 5;
  int64_t profile_hz = 0;
  std::string depdb_path;
  std::string cvss_path;
  std::string flight_dump;
  FlagSet flags;
  flags.AddInt("port", &port, "TCP port to listen on (0 picks a free port)");
  flags.AddInt("threads", &threads, "worker threads serving requests");
  flags.AddInt("io-timeout-ms", &io_timeout_ms, "per-request read/write timeout");
  flags.AddString("mode", &mode, "serving mode: reactor (epoll, pipelining) or threaded");
  flags.AddInt("reactor-shards", &reactor_shards, "epoll reactor shards (reactor mode)");
  flags.AddInt("max-inflight", &max_inflight,
               "global in-flight request cap before shedding with UNAVAILABLE");
  flags.AddInt("max-inflight-per-conn", &max_inflight_per_conn,
               "per-connection in-flight request cap (pipelining window)");
  flags.AddInt("backlog", &backlog, "listen(2) backlog for every listener");
  flags.AddInt("read-deadline-ms", &read_deadline_ms,
               "drop connections stalled mid-frame for this long (reactor mode)");
  flags.AddInt("slow-rpc-ms", &slow_rpc_ms,
               "RPCs slower than this keep their stage breakdown for `indaas debug`"
               " (0 = sheds/errors only)");
  flags.AddString("admission", &admission,
                  "adaptive (CoDel-style shedding on standing queue delay; the "
                  "in-flight caps stay as hard ceilings) or fixed (caps only)");
  flags.AddInt("target-queue-delay-ms", &target_queue_delay_ms,
               "adaptive admission: dispatch->worker queue-delay target");
  flags.AddInt("profile-hz", &profile_hz,
               "continuous profiling: sample registered threads at this frequency for the"
               " server's lifetime (0 = off; `indaas profile` then runs its own window)");
  flags.AddString("depdb", &depdb_path, "preload this DepDB file before serving");
  flags.AddString("cvss", &cvss_path, "optional CVSS feed file for software probabilities");
  flags.AddString("flight-dump", &flight_dump,
                  "install SIGUSR2/crash handlers dumping the flight recorder to this file"
                  " (empty = handlers not installed)");
  ObsOutputs obs_out;
  AddObsFlags(flags, obs_out);
  INDAAS_RETURN_IF_ERROR(flags.Parse(argc, argv));
  if (port < 0 || port > 65535) {
    return InvalidArgumentError(StrFormat("--port=%lld is not a TCP port",
                                          static_cast<long long>(port)));
  }
  if (mode != "reactor" && mode != "threaded") {
    return InvalidArgumentError("--mode must be 'reactor' or 'threaded'");
  }
  if (admission != "adaptive" && admission != "fixed") {
    return InvalidArgumentError("--admission must be 'adaptive' or 'fixed'");
  }
  if (target_queue_delay_ms < 1) {
    return InvalidArgumentError("--target-queue-delay-ms must be at least 1");
  }
  if (profile_hz < 0 || profile_hz > svc::kMaxProfileHz) {
    return InvalidArgumentError(StrFormat("--profile-hz must be in [0, %u]",
                                          svc::kMaxProfileHz));
  }

  svc::AuditServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.worker_threads = static_cast<size_t>(std::max<int64_t>(1, threads));
  options.io_timeout_ms = static_cast<int>(io_timeout_ms);
  options.mode = mode == "threaded" ? svc::ServerMode::kThreadPerRequest
                                    : svc::ServerMode::kReactor;
  options.reactor_shards = static_cast<size_t>(std::max<int64_t>(1, reactor_shards));
  options.max_inflight_global = static_cast<size_t>(std::max<int64_t>(1, max_inflight));
  options.max_inflight_per_connection =
      static_cast<size_t>(std::max<int64_t>(1, max_inflight_per_conn));
  options.listen_backlog = static_cast<int>(std::max<int64_t>(1, backlog));
  options.read_deadline_ms = static_cast<int>(read_deadline_ms);
  options.slow_rpc_threshold_s = static_cast<double>(slow_rpc_ms) / 1e3;
  // The CLI server defaults to adaptive admission (an operator-facing server
  // should push back before its queue is seconds deep); the library default
  // stays fixed for embedded/bench determinism.
  options.adaptive_admission = admission == "adaptive";
  options.target_queue_delay_s = static_cast<double>(target_queue_delay_ms) / 1e3;
  options.profile_hz = static_cast<uint32_t>(profile_hz);
  svc::AuditServer server(options);
  if (profile_hz > 0) {
    // The serve loop itself is mostly asleep, but registering it makes the
    // main thread visible in continuous profiles (signal handling, shutdown).
    obs::Profiler::Global().RegisterCurrentThread();
    std::printf("continuous profiling at %lld Hz; capture windows with "
                "`indaas profile --remote=localhost:%lld`\n",
                static_cast<long long>(profile_hz), static_cast<long long>(port));
  }

  if (!flight_dump.empty()) {
    obs::InstallFlightRecorderSignalHandlers(flight_dump);
    std::printf("flight recorder: kill -USR2 %d dumps to %s (crashes dump there too)\n",
                static_cast<int>(::getpid()), flight_dump.c_str());
  }

  // The probability model must outlive the server's agent.
  FailureProbabilityModel model = FailureProbabilityModel::GillEtAlDefaults();
  if (!cvss_path.empty()) {
    INDAAS_ASSIGN_OR_RETURN(std::string feed, ReadFile(cvss_path));
    INDAAS_RETURN_IF_ERROR(LoadCvssFeed(feed, model));
    server.agent().SetProbabilityModel(&model);
  }
  if (!depdb_path.empty()) {
    INDAAS_ASSIGN_OR_RETURN(std::string text, ReadFile(depdb_path));
    INDAAS_RETURN_IF_ERROR(server.agent().depdb().ImportText(text));
    std::printf("preloaded %zu DepDB records from %s\n",
                server.agent().depdb().TotalCount(), depdb_path.c_str());
  }

  BeginObs(obs_out);
  INDAAS_RETURN_IF_ERROR(server.Start());
  if (options.mode == svc::ServerMode::kReactor) {
    std::printf(
        "indaas audit server listening on port %u (%zu reactor shards, %zu workers); "
        "Ctrl-C to stop\n",
        server.port(), server.reactor_shards(), options.worker_threads);
  } else {
    std::printf("indaas audit server listening on port %u (%zu workers); Ctrl-C to stop\n",
                server.port(), options.worker_threads);
  }
  std::fflush(stdout);
  g_serve_interrupted.store(false);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::printf("shutting down...\n");
  server.Stop();
  return FinishObs(obs_out);
}

int RunCli(int argc, char** argv) {
  // --log-level, --log-format and --chaos-plan are global: valid anywhere on
  // the command line, consumed here so the per-command flag parsers never see
  // them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (StartsWith(arg, "--chaos-plan=")) {
      // Deterministic fault injection (src/net/chaos.h): every socket this
      // process opens — server, client or PIA ring — runs under the plan.
      Result<net::chaos::FaultPlan> plan = net::chaos::ParseFaultPlan(arg.substr(13));
      if (!plan.ok()) {
        std::fprintf(stderr, "bad --chaos-plan: %s\n", plan.status().ToString().c_str());
        return 2;
      }
      net::chaos::InstallPlan(*plan);
      if (plan->active()) {
        std::fprintf(stderr, "chaos plan installed: %s\n",
                     net::chaos::FaultPlanToString(*plan).c_str());
      }
    } else if (StartsWith(arg, "--log-level=")) {
      std::string_view value = arg.substr(12);
      if (value == "debug") {
        SetLogLevel(LogLevel::kDebug);
      } else if (value == "info") {
        SetLogLevel(LogLevel::kInfo);
      } else if (value == "warning") {
        SetLogLevel(LogLevel::kWarning);
      } else if (value == "error") {
        SetLogLevel(LogLevel::kError);
      } else {
        std::fprintf(stderr, "bad --log-level '%s' (debug | info | warning | error)\n",
                     std::string(value).c_str());
        return 2;
      }
    } else if (StartsWith(arg, "--log-format=")) {
      std::string_view value = arg.substr(13);
      if (value == "json") {
        obs::Logger::Global().SetSink(std::make_shared<obs::JsonLogSink>(stderr));
      } else if (value == "text") {
        obs::Logger::Global().SetSink(nullptr);  // restores the stderr text sink
      } else {
        std::fprintf(stderr, "bad --log-format '%s' (text | json)\n",
                     std::string(value).c_str());
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: indaas [--log-level=debug|info|warning|error] [--log-format=text|json] "
                 "[--chaos-plan=seed=N,reset=P,...] <command> [flags]\n"
                 "commands:\n"
                 "  collect  run simulated dependency acquisition into a DepDB file\n"
                 "  audit    structural independence audit of candidate deployments\n"
                 "  dot         emit a deployment's fault graph as Graphviz DOT\n"
                 "  graph       save a deployment's fault graph (text format)\n"
                 "  whatif      simulate component failures against a saved graph\n"
                 "  importance  rank components by fault-tree importance measures\n"
                 "  pia         private independence audit across provider component sets\n"
                 "  serve       run the networked audit service (see audit --remote)\n"
                 "  stats       scrape a live server's metrics (--remote=host:P "
                 "[--format=text|prometheus|json])\n"
                 "  debug       live introspection of a server: shards, connections, flight\n"
                 "              recorder, slowest RPCs (--remote=host:P [--events=N] [--top=K])\n"
                 "  profile     capture a remote CPU/alloc profile window (--remote=host:P\n"
                 "              [--seconds=S --hz=N --alloc=0|1 --out=FILE "
                 "--format=dump|collapsed|collapsed-alloc|chrome])\n"
                 "  trace-merge merge per-process --trace-out files into one Chrome trace\n"
                 "audit, pia and serve accept --metrics-out=<file> and --trace-out=<file>\n"
                 "networked: serve --port=P [--mode=reactor|threaded --reactor-shards=N\n"
                 "  --max-inflight=N --max-inflight-per-conn=N --backlog=N "
                 "--read-deadline-ms=MS --slow-rpc-ms=MS --flight-dump=FILE\n"
                 "  --admission=adaptive|fixed --target-queue-delay-ms=MS];\n"
                 "  audit --remote=host:P; pia --peers=a:p1,b:p2,c:p3 --self=i "
                 "[--allow-degraded]\n");
    return 2;
  }
  std::string command = argv[1];
  Status status;
  if (command == "collect") {
    status = RunCollectCommand(argc - 1, argv + 1);
  } else if (command == "audit") {
    status = RunAuditCommand(argc - 1, argv + 1);
  } else if (command == "dot") {
    status = RunDotCommand(argc - 1, argv + 1);
  } else if (command == "graph") {
    status = RunGraphCommand(argc - 1, argv + 1);
  } else if (command == "whatif") {
    status = RunWhatIfCommand(argc - 1, argv + 1);
  } else if (command == "importance") {
    status = RunImportanceCommand(argc - 1, argv + 1);
  } else if (command == "pia") {
    status = RunPiaCommand(argc - 1, argv + 1);
  } else if (command == "serve") {
    status = RunServeCommand(argc - 1, argv + 1);
  } else if (command == "stats") {
    status = RunStatsCommand(argc - 1, argv + 1);
  } else if (command == "debug") {
    status = RunDebugCommand(argc - 1, argv + 1);
  } else if (command == "profile") {
    status = RunProfileCommand(argc - 1, argv + 1);
  } else if (command == "trace-merge") {
    status = RunTraceMergeCommand(argc - 1, argv + 1);
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace indaas
