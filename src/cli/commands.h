// Subcommand implementations for the `indaas` command-line tool. Separated
// from main() so the test suite can drive them directly.
//
//   indaas collect    --infra=<case6a|lab|fat16> --out=deps.txt [...]
//   indaas audit      --depdb=deps.txt --deployments="S1,S2;S1,S3" [...]
//   indaas dot        --depdb=deps.txt --deployment="S1,S2"
//   indaas graph      --depdb=deps.txt --deployment="S1,S2" --out=g.fg
//   indaas whatif     --graph=g.fg --fail="net:tor1,hw:x"
//   indaas importance --graph=g.fg
//   indaas pia        --sets=providers.txt [...]
//   indaas serve      --port=7341 [--threads=4] [--depdb=deps.txt]
//   indaas stats      --remote=host:port [--format=text|prometheus|json]
//   indaas debug      --remote=host:port [--events=N] [--top=K]
//   indaas profile    --remote=host:port [--seconds=5] [--hz=99] [--out=p.txt]
//   indaas trace-merge --out=merged.json a.json b.json ...
//
// `pia` reads providers from a simple format: one provider per line,
//   <name>: <component>, <component>, ...
//
// Networked mode: `serve` runs the audit service; `audit --remote=host:port`
// ships the DepDB to that server and audits there; `pia
// --peers=a:p1,b:p2,c:p3 --self=i` runs one party of a socket-backed P-SOP
// ring (its set is line i of the --sets file).
//
// Distributed observability: `stats` scrapes a live server's metrics
// snapshot over the kGetStats RPC (and its health over kHealth);
// `profile` captures a sampling-profiler window from a live server over the
// kGetProfile RPC (symbolize offline with tools/symbolize_profile.py);
// `trace-merge` stitches per-process --trace-out files from client, server
// and ring peers into one clock-aligned Chrome trace.

#ifndef SRC_CLI_COMMANDS_H_
#define SRC_CLI_COMMANDS_H_

#include <string>

#include "src/util/status.h"

namespace indaas {

// Each command parses its own flags from argv (past the subcommand word) and
// writes its report to stdout. Returns an error Status on bad usage.
Status RunCollectCommand(int argc, char** argv);
Status RunAuditCommand(int argc, char** argv);
Status RunDotCommand(int argc, char** argv);
Status RunGraphCommand(int argc, char** argv);
Status RunWhatIfCommand(int argc, char** argv);
Status RunImportanceCommand(int argc, char** argv);
Status RunPiaCommand(int argc, char** argv);
Status RunServeCommand(int argc, char** argv);
Status RunStatsCommand(int argc, char** argv);
Status RunDebugCommand(int argc, char** argv);
Status RunProfileCommand(int argc, char** argv);
Status RunTraceMergeCommand(int argc, char** argv);

// Dispatches to a subcommand; prints usage on unknown commands.
int RunCli(int argc, char** argv);

}  // namespace indaas

#endif  // SRC_CLI_COMMANDS_H_
