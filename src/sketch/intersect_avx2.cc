// AVX2 kernels for src/sketch/intersect.h. Compiled with -mavx2 in its own
// translation unit (see src/sketch/CMakeLists.txt); callers reach it only
// through the runtime dispatch in intersect.cc after a CPUID check.

#if defined(INDAAS_SKETCH_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>

#include "src/sketch/intersect_kernels.h"

namespace indaas {
namespace sketch {
namespace internal {
namespace {

inline size_t MaskPopcount(__m256i eq) {
  return static_cast<size_t>(
      __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
}

// Equality mask for one 8-register block; lanes are -1 on agreement, so
// subtracting the mask from a vector accumulator counts matches without a
// per-block movemask + popcount round trip.
inline __m256i AgreeMask(const uint32_t* a, const uint32_t* b) {
  __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_cmpeq_epi32(va, vb);
}

inline size_t HorizontalSum(__m256i acc) {
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t sum = 0;
  for (uint32_t lane : lanes) {
    sum += lane;
  }
  return sum;
}

}  // namespace

size_t Avx2AgreeCount(const uint32_t* a, const uint32_t* b, size_t k) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= k; i += 32) {
    acc = _mm256_sub_epi32(acc, AgreeMask(a + i, b + i));
    acc = _mm256_sub_epi32(acc, AgreeMask(a + i + 8, b + i + 8));
    acc = _mm256_sub_epi32(acc, AgreeMask(a + i + 16, b + i + 16));
    acc = _mm256_sub_epi32(acc, AgreeMask(a + i + 24, b + i + 24));
  }
  for (; i + 8 <= k; i += 8) {
    acc = _mm256_sub_epi32(acc, AgreeMask(a + i, b + i));
  }
  size_t count = HorizontalSum(acc);
  for (; i < k; ++i) {
    count += a[i] == b[i];
  }
  return count;
}

// 8x8 block merge: an 8-element window of A against all 8 lane rotations of
// an 8-element window of B. Each strictly-increasing value matches at most
// one lane across the rotations, so the popcount of the OR-ed equality mask
// is exactly the number of common values between the windows; advancing the
// window with the smaller max never skips a match.
ThresholdResult Avx2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                                   size_t needed) {
  static const __m256i kRot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  static const __m256i kRot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  static const __m256i kRot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  static const __m256i kRot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  static const __m256i kRot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  static const __m256i kRot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  static const __m256i kRot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);

  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  if (needed == 0) {
    // Fast path: no per-block count materialisation — equality masks feed a
    // vector accumulator (each strictly-increasing value matches at most
    // one lane, so lane sums never double-count) and one horizontal sum at
    // the end produces the total.
    __m256i acc = _mm256_setzero_si256();
    while (i + 8 <= na && j + 8 <= nb) {
      __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      __m256i eq = _mm256_cmpeq_epi32(va, vb);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot1)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot2)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot3)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot4)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot5)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot6)));
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot7)));
      acc = _mm256_sub_epi32(acc, eq);
      uint32_t amax = a[i + 7];
      uint32_t bmax = b[j + 7];
      if (amax <= bmax) {
        i += 8;
      }
      if (bmax <= amax) {
        j += 8;
      }
    }
    count = HorizontalSum(acc);
  }
  while (i + 8 <= na && j + 8 <= nb) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot1)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot2)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot3)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot4)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot5)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot6)));
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, kRot7)));
    count += MaskPopcount(eq);
    uint32_t amax = a[i + 7];
    uint32_t bmax = b[j + 7];
    if (amax <= bmax) {
      i += 8;
    }
    if (bmax <= amax) {
      j += 8;
    }
    size_t best_possible = count + std::min(na - i, nb - j);
    if (best_possible < needed) {
      return {true, count};
    }
  }
  // Scalar merge over the leftover sub-window tails.
  while (i < na && j < nb) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    if (x == y) {
      ++count;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return {false, count};
}

size_t Avx2GallopIntersect(const uint32_t* small, size_t ns, const uint32_t* big, size_t nbig) {
  size_t j = 0;
  size_t count = 0;
  for (size_t s = 0; s < ns && j < nbig; ++s) {
    const uint32_t x = small[s];
    // Exponential probe: after the loop, every index < lo holds a value < x
    // and (when probe is in range) big[probe] >= x.
    size_t lo = j;
    size_t probe = j;
    size_t step = 1;
    while (probe < nbig && big[probe] < x) {
      lo = probe + 1;
      probe += step;
      step <<= 1;
    }
    size_t hi = std::min(probe, nbig);
    // Shrink until the candidate lower bound fits in [lo, lo + 8); the last
    // three binary-search levels collapse into one 8-wide vector compare.
    while (hi - lo > 7) {
      size_t mid = lo + (hi - lo) / 2;
      if (big[mid] < x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo + 8 <= nbig) {
      __m256i window = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(big + lo));
      __m256i eq = _mm256_cmpeq_epi32(window, _mm256_set1_epi32(static_cast<int>(x)));
      unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
      if (mask != 0) {
        ++count;
        j = lo + static_cast<size_t>(__builtin_ctz(mask)) + 1;
      } else {
        j = lo;
      }
    } else {
      while (lo < nbig && big[lo] < x) {
        ++lo;
      }
      if (lo < nbig && big[lo] == x) {
        ++count;
        ++lo;
      }
      j = lo;
    }
  }
  return count;
}

}  // namespace internal
}  // namespace sketch
}  // namespace indaas

#endif  // INDAAS_SKETCH_HAVE_AVX2
