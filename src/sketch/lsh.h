// LSH banding over MinHash register arrays (DESIGN.md §8).
//
// Splits each k-register sketch into b bands of r rows and hashes every
// band to a bucket; two sketches become a candidate pair iff they share a
// bucket in at least one band. A pair with Jaccard J agrees on a full band
// with probability J^r, so it collides somewhere with probability
// 1 - (1 - J^r)^b — the classic S-curve. With the defaults used by the
// all-pairs audit (k = 256, b = 64, r = 4), a J = 0.55 pair is missed with
// probability ~2e-3 while a J = 0.1 background pair collides with
// probability ~6e-3: candidate generation is near-linear in the number of
// providers instead of the N^2/2 ring executions the exact protocol needs.
//
// Bucketing is a pure function of the register values, so peers that built
// sketches under the same seed land in the same buckets on any host.

#ifndef SRC_SKETCH_LSH_H_
#define SRC_SKETCH_LSH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/sketch/sketch.h"

namespace indaas {
namespace sketch {

struct LshParams {
  uint32_t bands = 64;  // b
  uint32_t rows = 4;    // r; bands * rows <= k (excess bands are dropped)
};

// P[candidate] = 1 - (1 - J^r)^b for a pair with true Jaccard `jaccard`.
double LshCollisionProbability(double jaccard, const LshParams& params);

// Number of bands that actually fit a k-register sketch.
inline uint32_t EffectiveBands(uint32_t k, const LshParams& params) {
  if (params.rows == 0) {
    return 0;
  }
  return std::min(params.bands, k / params.rows);
}

struct LshStats {
  size_t bands_used = 0;
  size_t buckets = 0;           // non-empty buckets across all bands
  size_t max_bucket = 0;        // largest bucket population
  size_t candidate_pairs = 0;   // deduplicated pairs emitted
};

// All candidate pairs (i < j, sorted ascending, deduplicated) among the
// sketches in `arena` under `params` banding.
std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(const SketchArena& arena,
                                                             const LshParams& params,
                                                             LshStats* stats = nullptr);

}  // namespace sketch
}  // namespace indaas

#endif  // SRC_SKETCH_LSH_H_
