// Internal kernel entry points behind src/sketch/intersect.h's dispatch.
// The AVX2 definitions live in intersect_avx2.cc, which CMake compiles with
// -mavx2 when the compiler and target support it (INDAAS_SKETCH_HAVE_AVX2);
// keeping them in their own translation unit means the rest of the library
// never emits AVX2 instructions, so the runtime CPUID check is the only
// gate between a pre-AVX2 machine and an illegal-instruction fault.

#ifndef SRC_SKETCH_INTERSECT_KERNELS_H_
#define SRC_SKETCH_INTERSECT_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "src/sketch/intersect.h"

namespace indaas {
namespace sketch {
namespace internal {

#if defined(INDAAS_SKETCH_HAVE_AVX2)
size_t Avx2AgreeCount(const uint32_t* a, const uint32_t* b, size_t k);
// Block-merge intersection with early exit once the intersection can no
// longer reach `needed` (0 = never prune). Unpruned results are exact.
ThresholdResult Avx2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                                   size_t needed);
// Galloping intersection for lopsided inputs (ns << nbig): exponential
// search per small element, with the final <=8-wide window resolved by one
// vector compare instead of the last binary-search levels.
size_t Avx2GallopIntersect(const uint32_t* small, size_t ns, const uint32_t* big, size_t nbig);
#endif

}  // namespace internal
}  // namespace sketch
}  // namespace indaas

#endif  // SRC_SKETCH_INTERSECT_KERNELS_H_
