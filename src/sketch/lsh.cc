#include "src/sketch/lsh.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace indaas {
namespace sketch {
namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Order-sensitive chain over one band's registers; two sketches share a
// bucket iff all r registers of the band agree (up to 64-bit hash accident).
uint64_t BandKey(const uint32_t* regs, uint32_t rows) {
  uint64_t key = 0x4C534842616E6473ULL;  // "LSHBands"
  for (uint32_t r = 0; r < rows; ++r) {
    key = Mix64(key ^ regs[r]);
  }
  return key;
}

}  // namespace

double LshCollisionProbability(double jaccard, const LshParams& params) {
  if (jaccard <= 0.0) {
    return 0.0;
  }
  if (jaccard >= 1.0) {
    return 1.0;
  }
  double band_hit = std::pow(jaccard, static_cast<double>(params.rows));
  return 1.0 - std::pow(1.0 - band_hit, static_cast<double>(params.bands));
}

std::vector<std::pair<uint32_t, uint32_t>> LshCandidatePairs(const SketchArena& arena,
                                                             const LshParams& params,
                                                             LshStats* stats) {
  const uint32_t bands = EffectiveBands(arena.k(), params);
  const uint32_t rows = params.rows;
  const size_t n = arena.count();
  LshStats local;
  local.bands_used = bands;

  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(n * 2);
  for (uint32_t band = 0; band < bands; ++band) {
    buckets.clear();
    const size_t offset = static_cast<size_t>(band) * rows;
    for (size_t i = 0; i < n; ++i) {
      buckets[BandKey(arena.At(i) + offset, rows)].push_back(static_cast<uint32_t>(i));
    }
    for (const auto& [key, members] : buckets) {
      local.buckets += 1;
      local.max_bucket = std::max(local.max_bucket, members.size());
      for (size_t a = 0; a + 1 < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          pairs.emplace_back(members[a], members[b]);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  local.candidate_pairs = pairs.size();
  if (stats != nullptr) {
    *stats = local;
  }
  return pairs;
}

}  // namespace sketch
}  // namespace indaas
