// Provider-scale all-pairs similarity: sketch -> LSH candidates -> verified
// Jaccard (DESIGN.md §8).
//
// The exact P-SOP audit runs one commutative-encryption ring per provider
// pair — N(N-1)/2 executions. This engine instead sketches every provider
// once, lets LSH banding nominate the few pairs that could plausibly be
// similar, and verifies only those: with the default S-curve a 64-provider
// fleet evaluates tens of pairs instead of 2016. Verification is either the
// register-agreement estimator (free, error ~1/sqrt(k)) or an exact-on-
// fingerprints intersection via the SIMD kernels (collision-exact Jaccard),
// optionally pruned below a minimum-Jaccard threshold.
//
// Everything is deterministic under a fixed seed: identical inputs rank
// identically across runs and hosts.

#ifndef SRC_SKETCH_ALLPAIRS_H_
#define SRC_SKETCH_ALLPAIRS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sketch/intersect.h"
#include "src/sketch/lsh.h"
#include "src/sketch/sketch.h"

namespace indaas {
namespace sketch {

enum class VerifyMode : uint8_t {
  kRegisters = 0,     // J ~= AgreeCount / k on the sketches already in hand
  kFingerprints = 1,  // exact Jaccard over sorted 32-bit fingerprint sets
};

struct AllPairsOptions {
  SketchParams sketch;
  LshParams lsh;
  VerifyMode verify = VerifyMode::kFingerprints;
  // Early-exit threshold for fingerprint verification; candidate pairs whose
  // Jaccard provably falls below it are dropped (counted as pruned). 0 keeps
  // every candidate.
  double min_jaccard = 0.0;
  size_t top = 0;  // keep only the top-N pairs by Jaccard; 0 = keep all
  SimdLevel simd = BestSimdLevel();
};

struct ScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;  // a < b
  double jaccard = 0.0;
};

struct AllPairsResult {
  // Descending Jaccard, ties broken by (a, b) so the ranking is stable.
  std::vector<ScoredPair> pairs;
  size_t providers = 0;
  size_t pairs_possible = 0;   // N(N-1)/2 — what the exact audit would run
  size_t pairs_evaluated = 0;  // LSH candidates actually verified
  size_t pairs_pruned = 0;     // candidates dropped by the Jaccard threshold
  LshStats lsh;
  size_t sketch_bytes = 0;  // total register bytes across all providers
  double build_seconds = 0.0;
  double lsh_seconds = 0.0;
  double verify_seconds = 0.0;
};

AllPairsResult RunAllPairs(const std::vector<std::vector<std::string>>& sets,
                           const AllPairsOptions& options);

}  // namespace sketch
}  // namespace indaas

#endif  // SRC_SKETCH_ALLPAIRS_H_
