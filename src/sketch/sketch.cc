#include "src/sketch/sketch.h"

#include <algorithm>

#include "src/crypto/hash_family.h"

namespace indaas {
namespace sketch {
namespace {

// Seed-space salts keeping the three hash uses (base fingerprint, register
// multipliers, register offsets) independent even under related seeds.
constexpr uint64_t kFingerprintSalt = 0x46696E6765727072ULL;  // "Fingerpr"
constexpr uint64_t kMultiplierSalt = 0x4D756C7469706C79ULL;   // "Multiply"
constexpr uint64_t kOffsetSalt = 0x4F66667365742121ULL;       // "Offset!!"

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t Multiplier(uint64_t seed, uint32_t i) {
  // Odd multiplier: multiply-shift needs a unit of Z/2^64.
  return Mix64(seed ^ kMultiplierSalt ^ (0x9E3779B97F4A7C15ULL * (i + 1))) | 1;
}

uint64_t Offset(uint64_t seed, uint32_t i) {
  return Mix64(seed ^ kOffsetSalt ^ (0xC2B2AE3D27D4EB4FULL * (i + 1)));
}

}  // namespace

uint64_t ElementFingerprint(uint64_t seed, std::string_view element) {
  return KeyedHash64(seed ^ kFingerprintSalt, element);
}

uint64_t RegisterHash(uint64_t seed, uint32_t i, uint64_t fingerprint) {
  return Multiplier(seed, i) * fingerprint + Offset(seed, i);
}

void BuildSketch(const SketchParams& params, const std::vector<std::string>& elements,
                 uint32_t* out, std::vector<uint32_t>* argmin) {
  const uint32_t k = params.k;
  if (argmin != nullptr) {
    argmin->assign(k, 0);
  }
  if (elements.empty()) {
    // Empty-set sketch: all registers saturated, agrees with nothing that
    // sketched a non-empty set except by 2^-32 accident.
    std::fill(out, out + k, UINT32_MAX);
    return;
  }
  // Hash each element once, then run the k multiply-shift registers over the
  // fingerprint array. Registers are the inner loop so `mins` stays hot.
  std::vector<uint64_t> fingerprints;
  fingerprints.reserve(elements.size());
  for (const std::string& element : elements) {
    fingerprints.push_back(ElementFingerprint(params.seed, element));
  }
  std::vector<uint64_t> mins(k, UINT64_MAX);
  for (uint32_t i = 0; i < k; ++i) {
    const uint64_t a = Multiplier(params.seed, i);
    const uint64_t b = Offset(params.seed, i);
    uint64_t best = UINT64_MAX;
    uint32_t best_index = 0;
    for (size_t e = 0; e < fingerprints.size(); ++e) {
      uint64_t h = a * fingerprints[e] + b;
      // Strict < keeps the earliest element on (negligible) 64-bit ties,
      // making argmin — not just the register value — deterministic.
      if (h < best) {
        best = h;
        best_index = static_cast<uint32_t>(e);
      }
    }
    mins[i] = best;
    if (argmin != nullptr) {
      (*argmin)[i] = best_index;
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    out[i] = static_cast<uint32_t>(mins[i] >> 32);
  }
}

SketchArena BuildSketches(const SketchParams& params,
                          const std::vector<std::vector<std::string>>& sets) {
  SketchArena arena(params.k, sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    BuildSketch(params, sets[i], arena.At(i));
  }
  return arena;
}

std::vector<uint32_t> BuildFingerprints(uint64_t seed, const std::vector<std::string>& elements) {
  std::vector<uint32_t> out;
  out.reserve(elements.size());
  for (const std::string& element : elements) {
    out.push_back(static_cast<uint32_t>(ElementFingerprint(seed, element) >> 32));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sketch
}  // namespace indaas
