// Register-array MinHash sketching (DESIGN.md §8).
//
// A sketch compresses a component set into k fixed-width registers: register
// i holds (the top 32 bits of) the minimum of hash function h_i over the
// set. For two sets A and B, P[register i agrees] = J(A, B), so the fraction
// of agreeing registers is an unbiased Jaccard estimator with standard error
// sqrt(J(1-J)/k) <= 1/(2*sqrt(k)) — "~1/sqrt(k)" is the bound we document
// and test (tests/sketch_test.cc asserts mean absolute error <= 3/sqrt(k)).
//
// The k "independent permutations" are multiply-shift hashes over one strong
// 64-bit base fingerprint per element: fp = KeyedHash64(seed', element) is
// computed once, then h_i(fp) = a_i * fp + b_i with per-register odd
// multipliers derived from the seed (Dietzfelbinger-style multiply-shift;
// the register keeps the top 32 bits of the minimising value). Sketching is
// therefore O(n) string hashes + O(n*k) integer multiply-adds — the string
// never gets rehashed per register, which is what makes k = 256 affordable
// on 100k-element sets.
//
// Everything here is a pure function of (seed, element bytes): no pointers,
// no iteration-order dependence, no locale. Identical seeds give identical
// sketches across runs, hosts and processes — the property that lets ring
// peers sketch locally and exchange nothing but the registers
// (src/svc/pia_peer.h), and that tests/pia_test.cc locks down with golden
// register values.

#ifndef SRC_SKETCH_SKETCH_H_
#define SRC_SKETCH_SKETCH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace indaas {
namespace sketch {

struct SketchParams {
  uint32_t k = 256;    // registers per sketch; estimator error ~1/sqrt(k)
  uint64_t seed = 1;   // shared by every party sketching the same universe
};

// Documented estimator error bound for a k-register sketch.
inline double StandardError(uint32_t k) {
  return k == 0 ? 1.0 : 1.0 / std::sqrt(static_cast<double>(k));
}

// Bytes one k-register sketch occupies on the wire (registers only).
inline size_t SketchBytes(uint32_t k) { return static_cast<size_t>(k) * sizeof(uint32_t); }

// Contiguous arena of n fixed-width sketches: sketch i is the k consecutive
// u32 registers at At(i). One allocation for a whole provider fleet keeps
// the all-pairs kernels streaming over dense memory instead of chasing
// per-sketch vectors.
class SketchArena {
 public:
  SketchArena(uint32_t k, size_t count) : k_(k), regs_(static_cast<size_t>(k) * count) {}

  uint32_t k() const { return k_; }
  size_t count() const { return k_ == 0 ? 0 : regs_.size() / k_; }
  size_t bytes() const { return regs_.size() * sizeof(uint32_t); }

  uint32_t* At(size_t i) { return regs_.data() + i * k_; }
  const uint32_t* At(size_t i) const { return regs_.data() + i * k_; }

 private:
  uint32_t k_;
  std::vector<uint32_t> regs_;
};

// 64-bit base fingerprint of one element (KeyedHash64 under a seed-derived
// key). Exposed so MinHash sampling (src/pia/psop.cc) and fingerprint-set
// building hash each element exactly once.
uint64_t ElementFingerprint(uint64_t seed, std::string_view element);

// The i-th register hash of a base fingerprint: a_i * fp + b_i with a_i odd,
// both derived from `seed` alone. The full 64-bit value orders candidates
// for the minimum; the register keeps its top 32 bits.
uint64_t RegisterHash(uint64_t seed, uint32_t i, uint64_t fingerprint);

// Builds the k-register sketch of `elements` into out[0..k). Duplicate
// elements are harmless (min over a multiset equals min over its set). If
// `argmin` is non-null it receives, per register, the index into `elements`
// of the minimising element — what MinHash-compressed P-SOP feeds into the
// exact protocol, and what the determinism cross-check test compares.
// Ties on the full 64-bit register hash keep the earliest element.
void BuildSketch(const SketchParams& params, const std::vector<std::string>& elements,
                 uint32_t* out, std::vector<uint32_t>* argmin = nullptr);

// Sketches every set into a fresh arena (arena slot i = sets[i]).
SketchArena BuildSketches(const SketchParams& params,
                          const std::vector<std::vector<std::string>>& sets);

// Sorted, deduplicated 32-bit fingerprints of `elements` (top halves of the
// base fingerprints). Input to the sorted-set intersection kernels
// (src/sketch/intersect.h): |A ∩ B| on fingerprints equals |A ∩ B| on the
// sets up to 2^-32 collisions, so Jaccard over fingerprints is exact for
// practical purposes while intersecting at memory bandwidth.
std::vector<uint32_t> BuildFingerprints(uint64_t seed, const std::vector<std::string>& elements);

}  // namespace sketch
}  // namespace indaas

#endif  // SRC_SKETCH_SKETCH_H_
