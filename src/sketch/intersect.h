// Pairwise sketch-comparison kernels with runtime SIMD dispatch
// (DESIGN.md §8).
//
// Two kernel families, each in scalar / SSE2 / AVX2 variants selected at
// runtime from CPUID (build-time fallback keeps non-x86 targets on the
// scalar path, so the library compiles everywhere):
//
//  - AgreeCount: #indices where two k-register MinHash sketches hold the
//    same value — the Jaccard estimator's numerator. Branchless compare
//    streams; AVX2 does 32 registers per unrolled iteration.
//  - IntersectCount: |A ∩ B| over two sorted, deduplicated u32 fingerprint
//    arrays. Similar-size inputs use block merges — compare an 8-element
//    window of A against every rotation of an 8-element window of B with
//    vector equality, then advance whichever window has the smaller max
//    (values are strictly increasing, so each element matches at most one
//    lane and the block-advance rule never skips a match). Lopsided inputs
//    (32x size ratio) switch to galloping: exponential search in the big
//    array, with the final containment probe done as one 8-wide vector
//    compare at AVX2.
//
// IntersectCountThreshold adds an early exit: it abandons a pair as soon as
// the best still-achievable intersection can no longer reach `min_jaccard`
// (upper bound count + min(remaining_a, remaining_b), checked per block).
// A pruned result guarantees J < min_jaccard; an unpruned result is the
// exact count — so ranking code can prune the ocean of near-disjoint
// provider pairs at a fraction of a full merge each.
//
// Every variant returns identical counts (tests/sketch_test.cc property-
// tests scalar vs SSE2 vs AVX2 on randomized inputs); only wall time
// differs. The INDAAS_SKETCH_SIMD environment variable (scalar|sse2|avx2)
// pins dispatch for A/B benchmarks and the CI job that forces the AVX2
// path; an unavailable pin silently degrades to the best supported level,
// which the dispatch test turns into a hard failure where support is
// mandatory.

#ifndef SRC_SKETCH_INTERSECT_H_
#define SRC_SKETCH_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace indaas {
namespace sketch {

enum class SimdLevel : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

const char* SimdLevelName(SimdLevel level);

// True when `level` is both compiled in and supported by this CPU.
bool SimdLevelAvailable(SimdLevel level);

// Highest available level, computed once. INDAAS_SKETCH_SIMD=scalar|sse2|
// avx2 pins the answer (degrading to the best available level when the pin
// is not supported).
SimdLevel BestSimdLevel();

// #indices i in [0, k) with a[i] == b[i]. a and b are k-register sketches.
size_t AgreeCount(const uint32_t* a, const uint32_t* b, size_t k, SimdLevel level);

// |A ∩ B| for sorted, strictly-increasing u32 arrays.
size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                      SimdLevel level);

struct ThresholdResult {
  // True when the merge was abandoned because J < min_jaccard is already
  // certain; `count` is then a lower bound, not the exact intersection.
  bool pruned = false;
  size_t count = 0;
};

// IntersectCount with an early exit below `min_jaccard` (see file comment).
ThresholdResult IntersectCountThreshold(const uint32_t* a, size_t na, const uint32_t* b,
                                        size_t nb, double min_jaccard, SimdLevel level);

// J = |A∩B| / |A∪B| from an intersection count of sorted sets.
inline double JaccardFromIntersection(size_t intersection, size_t na, size_t nb) {
  size_t union_size = na + nb - intersection;
  return union_size == 0 ? 0.0
                         : static_cast<double>(intersection) / static_cast<double>(union_size);
}

}  // namespace sketch
}  // namespace indaas

#endif  // SRC_SKETCH_INTERSECT_H_
