#include "src/sketch/intersect.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/sketch/intersect_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#define INDAAS_SKETCH_X86_64 1
#include <emmintrin.h>  // SSE2: baseline on x86-64, no extra compile flags
#endif

namespace indaas {
namespace sketch {
namespace {

// Size ratio beyond which the merge switches to galloping: binary-search
// cost ns*log(nb) beats the linear merge once nb dwarfs ns.
constexpr size_t kGallopRatio = 32;

// First index >= x in v[lo, n), by exponential probe then binary search.
size_t GallopLowerBound(const uint32_t* v, size_t lo, size_t n, uint32_t x) {
  size_t step = 1;
  size_t probe = lo;
  while (probe < n && v[probe] < x) {
    lo = probe + 1;
    probe += step;
    step <<= 1;
  }
  size_t hi = std::min(probe, n);
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (v[mid] < x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t ScalarGallopIntersect(const uint32_t* small, size_t ns, const uint32_t* big, size_t nb) {
  size_t j = 0;
  size_t count = 0;
  for (size_t i = 0; i < ns && j < nb; ++i) {
    j = GallopLowerBound(big, j, nb, small[i]);
    if (j < nb && big[j] == small[i]) {
      ++count;
      ++j;
    }
  }
  return count;
}

// Classical two-pointer merge; the scalar baseline every SIMD variant is
// benchmarked against. `needed` = 0 disables the early exit; otherwise the
// merge abandons once count + min(remaining) < needed (checked every 16
// steps so the hot loop stays three compares).
ThresholdResult ScalarMergeIntersect(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                                     size_t needed) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  size_t steps = 0;
  while (i < na && j < nb) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    if (x == y) {
      ++count;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
    if (needed != 0 && (++steps & 15u) == 0) {
      size_t best_possible = count + std::min(na - i, nb - j);
      if (best_possible < needed) {
        return {true, count};
      }
    }
  }
  return {false, count};
}

#if defined(INDAAS_SKETCH_X86_64)

size_t Sse2AgreeCount(const uint32_t* a, const uint32_t* b, size_t k) {
  // Equality lanes are -1, so subtracting the compare mask from a vector
  // accumulator counts agreements; one horizontal sum at the end.
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_sub_epi32(acc, _mm_cmpeq_epi32(va, vb));
  }
  alignas(16) uint32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  size_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < k; ++i) {
    count += a[i] == b[i];
  }
  return count;
}

// 4x4 block merge: va against every lane rotation of vb. Values are
// strictly increasing within each array, so each lane matches at most one
// rotation and the popcount of the combined mask is the number of common
// values between the two windows. Advancing the window with the smaller
// max never skips a match (anything past the other window exceeds it).
ThresholdResult Sse2IntersectCount(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                                   size_t needed) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));  // rot 2
    eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)))));
    uint32_t amax = a[i + 3];
    uint32_t bmax = b[j + 3];
    if (amax <= bmax) {
      i += 4;
    }
    if (bmax <= amax) {
      j += 4;
    }
    if (needed != 0) {
      size_t best_possible = count + std::min(na - i, nb - j);
      if (best_possible < needed) {
        return {true, count};
      }
    }
  }
  // Scalar tail over the remaining sub-window elements.
  ThresholdResult tail = ScalarMergeIntersect(a + i, na - i, b + j, nb - j, 0);
  return {false, count + tail.count};
}

#endif  // INDAAS_SKETCH_X86_64

bool CpuHasAvx2() {
#if defined(INDAAS_SKETCH_HAVE_AVX2) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdLevel DetectBestLevel() {
  SimdLevel best = SimdLevel::kScalar;
#if defined(INDAAS_SKETCH_X86_64)
  best = SimdLevel::kSse2;
#endif
  if (CpuHasAvx2()) {
    best = SimdLevel::kAvx2;
  }
  const char* pin = std::getenv("INDAAS_SKETCH_SIMD");
  if (pin != nullptr) {
    SimdLevel wanted = best;
    if (std::strcmp(pin, "scalar") == 0) {
      wanted = SimdLevel::kScalar;
    } else if (std::strcmp(pin, "sse2") == 0) {
      wanted = SimdLevel::kSse2;
    } else if (std::strcmp(pin, "avx2") == 0) {
      wanted = SimdLevel::kAvx2;
    }
    if (wanted < best || SimdLevelAvailable(wanted)) {
      best = wanted;
    }
  }
  return best;
}

// Degrades an unavailable request to the best supported level at or below.
SimdLevel Resolve(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !SimdLevelAvailable(SimdLevel::kAvx2)) {
    level = SimdLevel::kSse2;
  }
  if (level == SimdLevel::kSse2 && !SimdLevelAvailable(SimdLevel::kSse2)) {
    level = SimdLevel::kScalar;
  }
  return level;
}

ThresholdResult IntersectDispatch(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                                  size_t needed, SimdLevel level) {
  if (na == 0 || nb == 0) {
    return {needed != 0, 0};
  }
  level = Resolve(level);
  // Lopsided inputs: gallop regardless of level (the search is latency-
  // bound; AVX2 only changes the final containment probe, done in the AVX2
  // translation unit so this file stays SSE2-clean).
  if (needed == 0 && (na > nb * kGallopRatio || nb > na * kGallopRatio)) {
    const uint32_t* small = na <= nb ? a : b;
    const uint32_t* big = na <= nb ? b : a;
    size_t ns = std::min(na, nb);
    size_t nbig = std::max(na, nb);
#if defined(INDAAS_SKETCH_HAVE_AVX2)
    if (level == SimdLevel::kAvx2) {
      return {false, internal::Avx2GallopIntersect(small, ns, big, nbig)};
    }
#endif
    return {false, ScalarGallopIntersect(small, ns, big, nbig)};
  }
  switch (level) {
#if defined(INDAAS_SKETCH_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return internal::Avx2IntersectCount(a, na, b, nb, needed);
#endif
#if defined(INDAAS_SKETCH_X86_64)
    case SimdLevel::kSse2:
      return Sse2IntersectCount(a, na, b, nb, needed);
#endif
    default:
      return ScalarMergeIntersect(a, na, b, nb, needed);
  }
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdLevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
#if defined(INDAAS_SKETCH_X86_64)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx2:
      return CpuHasAvx2();
  }
  return false;
}

SimdLevel BestSimdLevel() {
  static const SimdLevel level = DetectBestLevel();
  return level;
}

size_t AgreeCount(const uint32_t* a, const uint32_t* b, size_t k, SimdLevel level) {
  switch (Resolve(level)) {
#if defined(INDAAS_SKETCH_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return internal::Avx2AgreeCount(a, b, k);
#endif
#if defined(INDAAS_SKETCH_X86_64)
    case SimdLevel::kSse2:
      return Sse2AgreeCount(a, b, k);
#endif
    default: {
      size_t count = 0;
      for (size_t i = 0; i < k; ++i) {
        count += a[i] == b[i];
      }
      return count;
    }
  }
}

size_t IntersectCount(const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
                      SimdLevel level) {
  return IntersectDispatch(a, na, b, nb, 0, level).count;
}

ThresholdResult IntersectCountThreshold(const uint32_t* a, size_t na, const uint32_t* b,
                                        size_t nb, double min_jaccard, SimdLevel level) {
  size_t needed = 0;
  if (min_jaccard > 0.0) {
    // Smallest intersection still reaching min_jaccard, rounded down:
    // under-estimating `needed` only makes pruning more conservative,
    // never wrong.
    needed = static_cast<size_t>(min_jaccard * static_cast<double>(na + nb) /
                                 (1.0 + min_jaccard));
    if (needed == 0) {
      needed = 1;
    }
  }
  return IntersectDispatch(a, na, b, nb, needed, level);
}

}  // namespace sketch
}  // namespace indaas
