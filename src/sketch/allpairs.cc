#include "src/sketch/allpairs.h"

#include <algorithm>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace indaas {
namespace sketch {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct AllPairsMetrics {
  obs::Counter* runs;
  obs::Counter* sketches;
  obs::Counter* candidates;
  obs::Counter* evaluated;
  obs::Counter* pruned;

  static const AllPairsMetrics& Get() {
    static const AllPairsMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return AllPairsMetrics{
          reg.GetCounter("sketch.allpairs.runs"),
          reg.GetCounter("sketch.allpairs.sketches_built"),
          reg.GetCounter("sketch.allpairs.candidates"),
          reg.GetCounter("sketch.allpairs.pairs_evaluated"),
          reg.GetCounter("sketch.allpairs.pairs_pruned"),
      };
    }();
    return m;
  }
};

}  // namespace

AllPairsResult RunAllPairs(const std::vector<std::vector<std::string>>& sets,
                           const AllPairsOptions& options) {
  const AllPairsMetrics& metrics = AllPairsMetrics::Get();
  INDAAS_TRACE_SPAN_NAMED(span, "sketch.allpairs");
  span.Annotate("simd", SimdLevelName(options.simd));
  metrics.runs->Increment();

  AllPairsResult result;
  result.providers = sets.size();
  result.pairs_possible = sets.size() < 2 ? 0 : sets.size() * (sets.size() - 1) / 2;

  auto t0 = std::chrono::steady_clock::now();
  SketchArena arena = [&] {
    INDAAS_TRACE_SPAN("sketch.allpairs.build");
    return BuildSketches(options.sketch, sets);
  }();
  metrics.sketches->Add(sets.size());
  result.sketch_bytes = arena.bytes();
  result.build_seconds = SecondsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  std::vector<std::pair<uint32_t, uint32_t>> candidates;
  {
    INDAAS_TRACE_SPAN("sketch.allpairs.lsh");
    candidates = LshCandidatePairs(arena, options.lsh, &result.lsh);
  }
  metrics.candidates->Add(candidates.size());
  result.lsh_seconds = SecondsSince(t1);

  auto t2 = std::chrono::steady_clock::now();
  {
    INDAAS_TRACE_SPAN("sketch.allpairs.verify");
    std::vector<std::vector<uint32_t>> fingerprints;
    if (options.verify == VerifyMode::kFingerprints) {
      fingerprints.reserve(sets.size());
      for (const auto& set : sets) {
        fingerprints.push_back(BuildFingerprints(options.sketch.seed, set));
      }
    }
    result.pairs.reserve(candidates.size());
    for (const auto& [a, b] : candidates) {
      ++result.pairs_evaluated;
      if (options.verify == VerifyMode::kRegisters) {
        size_t agree = AgreeCount(arena.At(a), arena.At(b), arena.k(), options.simd);
        double j = arena.k() == 0 ? 0.0 : static_cast<double>(agree) / arena.k();
        if (j < options.min_jaccard) {
          ++result.pairs_pruned;
          continue;
        }
        result.pairs.push_back({a, b, j});
      } else {
        const auto& fa = fingerprints[a];
        const auto& fb = fingerprints[b];
        ThresholdResult r = IntersectCountThreshold(fa.data(), fa.size(), fb.data(), fb.size(),
                                                    options.min_jaccard, options.simd);
        if (r.pruned) {
          ++result.pairs_pruned;
          continue;
        }
        double j = JaccardFromIntersection(r.count, fa.size(), fb.size());
        if (j < options.min_jaccard) {
          ++result.pairs_pruned;
          continue;
        }
        result.pairs.push_back({a, b, j});
      }
    }
  }
  metrics.evaluated->Add(result.pairs_evaluated);
  metrics.pruned->Add(result.pairs_pruned);
  result.verify_seconds = SecondsSince(t2);

  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.jaccard != y.jaccard) {
                return x.jaccard > y.jaccard;
              }
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  if (options.top != 0 && result.pairs.size() > options.top) {
    result.pairs.resize(options.top);
  }
  return result;
}

}  // namespace sketch
}  // namespace indaas
