// The auditing agent facade (paper §2, Figure 1).
//
// Mediates between the auditing client and the data sources: issues
// acquisition requests (Step 2-3), runs SIA over the collected DepDB
// (Steps 5-6) or supervises PIA across provider component-sets (Step 4),
// and returns the auditing report.

#ifndef SRC_AGENT_AGENT_H_
#define SRC_AGENT_AGENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/acquire/dam.h"
#include "src/agent/sia_audit.h"
#include "src/graph/fault_graph.h"
#include "src/agent/spec.h"
#include "src/deps/depdb.h"
#include "src/deps/prob_model.h"
#include "src/pia/audit.h"
#include "src/util/status.h"

namespace indaas {

class AuditingAgent {
 public:
  AuditingAgent() = default;

  // Registers an acquisition module (owned by the caller; must outlive the
  // agent).
  void AddModule(const DependencyAcquisitionModule* module);

  // Optional failure-probability model for weighted auditing.
  void SetProbabilityModel(const FailureProbabilityModel* model) { prob_model_ = model; }

  // Steps 2-3: invoke every registered module for every host appearing in
  // the specification's candidate deployments, filling the agent's DepDB.
  Status AcquireDependencies(const AuditSpecification& spec);

  // Direct DepDB access (e.g. to import previously exported records).
  DepDb& depdb() { return db_; }
  const DepDb& depdb() const { return db_; }

  // Steps 5-6 (SIA): audit every candidate deployment and return the report.
  Result<SiaAuditReport> AuditStructural(const AuditSpecification& spec) const;

  // Determines the minimal risk groups of one deployment after splicing in
  // the fault graphs of external services it depends on (the technical
  // report's aggregate dependency graphs, e.g. EC2 instances on EBS + ELB).
  // `services` maps placeholder basic-event names — which must appear in the
  // deployment graph, e.g. as hardware dependencies — to the corresponding
  // service's validated fault graph.
  Result<std::vector<std::vector<std::string>>> AuditComposedDeployment(
      const std::vector<std::string>& servers,
      const std::map<std::string, const FaultGraph*>& services) const;

  // Step 4 (PIA): supervise a private audit across cloud providers.
  Result<PiaAuditReport> AuditPrivate(const std::vector<CloudProvider>& providers,
                                      const PiaAuditOptions& options = {}) const;

 private:
  std::vector<const DependencyAcquisitionModule*> modules_;
  const FailureProbabilityModel* prob_model_ = nullptr;
  DepDb db_;
};

}  // namespace indaas

#endif  // SRC_AGENT_AGENT_H_
