#include "src/agent/sia_audit.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/graph/levels.h"
#include "src/obs/trace.h"
#include "src/sia/builder.h"
#include "src/sia/sampling.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace indaas {
namespace {

// Components that appear in the dependency closure of two or more of the
// deployment's servers — the "common dependencies" whose presence in an RG
// marks it unexpected.
std::set<std::string> SharedAcrossServers(const FaultGraph& graph) {
  auto sets = DowngradeToComponentSets(graph);
  if (!sets.ok()) {
    return {};
  }
  std::map<std::string, int> counts;
  for (const ComponentSet& set : *sets) {
    for (const std::string& component : set.components) {
      ++counts[component];
    }
  }
  std::set<std::string> shared;
  for (const auto& [component, count] : counts) {
    if (count >= 2) {
      shared.insert(component);
    }
  }
  return shared;
}

}  // namespace

Result<SiaAuditReport> RunSiaAudit(const DepDb& db, const AuditSpecification& spec,
                                   const FailureProbabilityModel* prob_model) {
  if (spec.candidate_deployments.empty()) {
    return InvalidArgumentError("RunSiaAudit: no candidate deployments");
  }
  if (spec.metric == RankingMetric::kFailureProbability && prob_model == nullptr) {
    return InvalidArgumentError("RunSiaAudit: probability metric requires a probability model");
  }
  SiaAuditReport report;
  report.algorithm = spec.algorithm;
  report.metric = spec.metric;
  INDAAS_TRACE_SPAN_NAMED(audit_span, "sia.audit");
  audit_span.Annotate("deployments", std::to_string(spec.candidate_deployments.size()));

  // One deployment's audit, independent of every other deployment's.
  auto audit_one =
      [&](const std::vector<std::string>& servers) -> Result<DeploymentAudit> {
    INDAAS_TRACE_SPAN_NAMED(span, "sia.audit.deployment");
    span.Annotate("servers", Join(servers, ","));
    BuildOptions build;
    build.required_servers = spec.required_servers;
    build.software_of_interest = spec.software_of_interest;
    build.include_network = spec.include_network;
    build.include_hardware = spec.include_hardware;
    build.include_software = spec.include_software;
    build.prob_model = prob_model;
    INDAAS_ASSIGN_OR_RETURN(FaultGraph graph, BuildDeploymentFaultGraph(db, servers, build));

    // Determine risk groups.
    std::vector<RiskGroup> groups;
    if (spec.algorithm == RgAlgorithm::kMinimal) {
      INDAAS_ASSIGN_OR_RETURN(MinimalRgResult exact, ComputeMinimalRiskGroups(graph));
      groups = std::move(exact.groups);
    } else {
      SamplingOptions sampling;
      sampling.rounds = spec.sampling_rounds;
      sampling.failure_bias = spec.sampling_bias;
      sampling.seed = spec.seed;
      sampling.threads = spec.parallel_deployments > 1 ? 1 : spec.threads;
      sampling.shrink = ShrinkMode::kGreedy;
      INDAAS_ASSIGN_OR_RETURN(SamplingResult sampled, SampleRiskGroups(graph, sampling));
      groups = std::move(sampled.groups);
    }

    // Rank.
    DeploymentAudit audit;
    audit.servers = servers;
    std::vector<RankedRiskGroup> ranked;
    if (spec.metric == RankingMetric::kSize) {
      ranked = RankBySize(std::move(groups));
    } else {
      ProbabilityRankingOptions prob_options;
      prob_options.default_prob = prob_model->default_prob();
      prob_options.seed = spec.seed;
      INDAAS_ASSIGN_OR_RETURN(ProbabilityRanking prob_ranking,
                              RankByImportance(graph, groups, prob_options));
      ranked = std::move(prob_ranking.ranked);
      audit.top_event_prob = prob_ranking.top_event_prob;
    }
    audit.independence_score = IndependenceScore(ranked, spec.score_top_n);

    // Unexpected RGs: smaller than the redundancy width, or touching a
    // component shared by several replicas.
    size_t width = spec.required_servers == 0
                       ? servers.size()
                       : servers.size() - spec.required_servers + 1;
    std::set<std::string> shared = SharedAcrossServers(graph);
    for (const RankedRiskGroup& entry : ranked) {
      DeploymentAudit::NamedRiskGroup named;
      named.score = entry.score;
      bool touches_shared = false;
      for (NodeId id : entry.group) {
        const std::string& name = graph.node(id).name;
        named.components.push_back(name);
        touches_shared = touches_shared || shared.count(name) != 0;
      }
      if (entry.group.size() < width || touches_shared) {
        ++audit.unexpected_rgs;
      }
      audit.ranked_groups.push_back(std::move(named));
    }
    return audit;
  };

  const size_t count = spec.candidate_deployments.size();
  std::vector<Result<DeploymentAudit>> results(count, Status(StatusCode::kInternal, "not run"));
  if (spec.parallel_deployments > 1 && count > 1) {
    ThreadPool pool(std::min(spec.parallel_deployments, count));
    pool.ParallelFor(count, [&](size_t i) {
      results[i] = audit_one(spec.candidate_deployments[i]);
    });
  } else {
    for (size_t i = 0; i < count; ++i) {
      results[i] = audit_one(spec.candidate_deployments[i]);
    }
  }
  for (Result<DeploymentAudit>& result : results) {
    if (!result.ok()) {
      return result.status();
    }
    report.deployments.push_back(std::move(result).value());
  }

  // Rank deployments. Size metric: higher score (larger RGs among the top-n)
  // = more independent. Probability metric: lower top-event probability
  // = more independent (the cross-deployment-comparable quantity; §6.2.1
  // validates the winner by lowest failure probability).
  std::stable_sort(report.deployments.begin(), report.deployments.end(),
                   [&](const DeploymentAudit& a, const DeploymentAudit& b) {
                     if (spec.metric == RankingMetric::kSize) {
                       if (a.unexpected_rgs != b.unexpected_rgs) {
                         return a.unexpected_rgs < b.unexpected_rgs;
                       }
                       return a.independence_score > b.independence_score;
                     }
                     return a.top_event_prob < b.top_event_prob;
                   });
  return report;
}

std::string RenderSiaReport(const SiaAuditReport& report, size_t top_rgs_per_deployment) {
  std::string out = "SIA auditing report";
  out += StrFormat(" (algorithm: %s, metric: %s)\n",
                   report.algorithm == RgAlgorithm::kMinimal ? "minimal-RG" : "failure-sampling",
                   report.metric == RankingMetric::kSize ? "size" : "failure-probability");
  size_t rank = 1;
  for (const DeploymentAudit& audit : report.deployments) {
    out += StrFormat("#%zu  deployment {%s}  score=%.4f  unexpected RGs=%zu", rank++,
                     Join(audit.servers, ", ").c_str(), audit.independence_score,
                     audit.unexpected_rgs);
    if (audit.top_event_prob > 0.0) {
      out += StrFormat("  Pr(outage)=%.6f", audit.top_event_prob);
    }
    out += '\n';
    size_t shown = 0;
    for (const auto& group : audit.ranked_groups) {
      if (shown++ >= top_rgs_per_deployment) {
        break;
      }
      out += StrFormat("    RG %zu: {%s}  score=%.4f\n", shown,
                       Join(group.components, ", ").c_str(), group.score);
    }
  }
  return out;
}

}  // namespace indaas
