#include "src/agent/report_diff.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/util/strings.h"

namespace indaas {
namespace {

// Order-insensitive deployment key.
std::vector<std::string> DeploymentKey(const std::vector<std::string>& servers) {
  std::vector<std::string> key = servers;
  std::sort(key.begin(), key.end());
  return key;
}

// Risk groups of an audit as a set of sorted component-name vectors.
std::set<std::vector<std::string>> GroupSet(const DeploymentAudit& audit) {
  std::set<std::vector<std::string>> out;
  for (const auto& group : audit.ranked_groups) {
    std::vector<std::string> names = group.components;
    std::sort(names.begin(), names.end());
    out.insert(std::move(names));
  }
  return out;
}

}  // namespace

bool AuditDiff::HasRegressions() const {
  for (const DeploymentDiff& diff : deployments) {
    if (diff.Regressed()) {
      return true;
    }
  }
  return false;
}

AuditDiff DiffSiaReports(const SiaAuditReport& before, const SiaAuditReport& after) {
  AuditDiff diff;
  std::map<std::vector<std::string>, const DeploymentAudit*> before_by_key;
  for (const DeploymentAudit& audit : before.deployments) {
    before_by_key.emplace(DeploymentKey(audit.servers), &audit);
  }
  std::set<std::vector<std::string>> matched;
  for (const DeploymentAudit& after_audit : after.deployments) {
    std::vector<std::string> key = DeploymentKey(after_audit.servers);
    auto it = before_by_key.find(key);
    if (it == before_by_key.end()) {
      diff.only_in_after.push_back(after_audit.servers);
      continue;
    }
    matched.insert(key);
    const DeploymentAudit& before_audit = *it->second;
    DeploymentDiff entry;
    entry.servers = after_audit.servers;
    entry.unexpected_before = before_audit.unexpected_rgs;
    entry.unexpected_after = after_audit.unexpected_rgs;
    std::set<std::vector<std::string>> old_groups = GroupSet(before_audit);
    std::set<std::vector<std::string>> new_groups = GroupSet(after_audit);
    std::set_difference(new_groups.begin(), new_groups.end(), old_groups.begin(),
                        old_groups.end(), std::back_inserter(entry.appeared));
    std::set_difference(old_groups.begin(), old_groups.end(), new_groups.begin(),
                        new_groups.end(), std::back_inserter(entry.disappeared));
    diff.deployments.push_back(std::move(entry));
  }
  for (const DeploymentAudit& audit : before.deployments) {
    if (matched.count(DeploymentKey(audit.servers)) == 0) {
      diff.only_in_before.push_back(audit.servers);
    }
  }
  return diff;
}

std::string RenderAuditDiff(const AuditDiff& diff) {
  std::string out;
  for (const DeploymentDiff& entry : diff.deployments) {
    if (entry.appeared.empty() && entry.disappeared.empty() &&
        entry.unexpected_before == entry.unexpected_after) {
      continue;
    }
    out += StrFormat("deployment {%s}: unexpected RGs %zu -> %zu%s\n",
                     Join(entry.servers, ", ").c_str(), entry.unexpected_before,
                     entry.unexpected_after, entry.Regressed() ? "  ** REGRESSION **" : "");
    for (const auto& group : entry.appeared) {
      out += StrFormat("  + new RG {%s}\n", Join(group, ", ").c_str());
    }
    for (const auto& group : entry.disappeared) {
      out += StrFormat("  - resolved RG {%s}\n", Join(group, ", ").c_str());
    }
  }
  for (const auto& servers : diff.only_in_before) {
    out += StrFormat("deployment {%s}: removed from audit\n", Join(servers, ", ").c_str());
  }
  for (const auto& servers : diff.only_in_after) {
    out += StrFormat("deployment {%s}: newly audited\n", Join(servers, ", ").c_str());
  }
  if (out.empty()) {
    out = "no changes\n";
  }
  return out;
}

}  // namespace indaas
