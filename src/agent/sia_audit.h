// Structural independence auditing end-to-end (paper §4.1): build the fault
// graph per candidate deployment, determine risk groups, rank them, compute
// independence scores, and assemble the auditing report returned to the
// client (§4.1.4).

#ifndef SRC_AGENT_SIA_AUDIT_H_
#define SRC_AGENT_SIA_AUDIT_H_

#include <string>
#include <vector>

#include "src/agent/spec.h"
#include "src/deps/depdb.h"
#include "src/deps/prob_model.h"
#include "src/sia/ranking.h"
#include "src/sia/risk_groups.h"
#include "src/util/status.h"

namespace indaas {

// Audit outcome for one candidate deployment.
struct DeploymentAudit {
  std::vector<std::string> servers;
  // Ranked RGs with human-readable component names.
  struct NamedRiskGroup {
    std::vector<std::string> components;
    double score = 0.0;
  };
  std::vector<NamedRiskGroup> ranked_groups;
  double independence_score = 0.0;
  // Number of RGs smaller than the deployment's redundancy width — the
  // "unexpected RGs" of §1 (any of these defeats the redundancy).
  size_t unexpected_rgs = 0;
  double top_event_prob = 0.0;  // probability metric only
};

struct SiaAuditReport {
  // Sorted most-independent first (see §4.1.4: by independence score).
  std::vector<DeploymentAudit> deployments;
  RgAlgorithm algorithm = RgAlgorithm::kMinimal;
  RankingMetric metric = RankingMetric::kSize;
};

// Runs the full SIA pipeline over every candidate deployment in `spec`.
// `prob_model` may be null (required for the probability metric).
Result<SiaAuditReport> RunSiaAudit(const DepDb& db, const AuditSpecification& spec,
                                   const FailureProbabilityModel* prob_model = nullptr);

// Renders the report as text (deployment ranking + top RGs per deployment).
std::string RenderSiaReport(const SiaAuditReport& report, size_t top_rgs_per_deployment = 4);

}  // namespace indaas

#endif  // SRC_AGENT_SIA_AUDIT_H_
