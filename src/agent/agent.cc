#include "src/agent/agent.h"

#include <set>

#include "src/graph/compose.h"
#include "src/sia/builder.h"
#include "src/sia/ranking.h"

namespace indaas {

void AuditingAgent::AddModule(const DependencyAcquisitionModule* module) {
  modules_.push_back(module);
}

Status AuditingAgent::AcquireDependencies(const AuditSpecification& spec) {
  std::set<std::string> hosts;
  for (const auto& deployment : spec.candidate_deployments) {
    hosts.insert(deployment.begin(), deployment.end());
  }
  if (hosts.empty()) {
    return InvalidArgumentError("AcquireDependencies: specification names no hosts");
  }
  return RunAcquisition(modules_, std::vector<std::string>(hosts.begin(), hosts.end()), db_);
}

Result<SiaAuditReport> AuditingAgent::AuditStructural(const AuditSpecification& spec) const {
  return RunSiaAudit(db_, spec, prob_model_);
}

Result<PiaAuditReport> AuditingAgent::AuditPrivate(const std::vector<CloudProvider>& providers,
                                                   const PiaAuditOptions& options) const {
  return RunPiaAudit(providers, options);
}

Result<std::vector<std::vector<std::string>>> AuditingAgent::AuditComposedDeployment(
    const std::vector<std::string>& servers,
    const std::map<std::string, const FaultGraph*>& services) const {
  BuildOptions build;
  build.prob_model = prob_model_;
  INDAAS_ASSIGN_OR_RETURN(FaultGraph deployment, BuildDeploymentFaultGraph(db_, servers, build));
  INDAAS_ASSIGN_OR_RETURN(FaultGraph composed, ComposeFaultGraphs(deployment, services));
  INDAAS_ASSIGN_OR_RETURN(MinimalRgResult groups, ComputeMinimalRiskGroups(composed));
  std::vector<std::vector<std::string>> named;
  named.reserve(groups.groups.size());
  for (const auto& ranked : RankBySize(groups.groups)) {
    std::vector<std::string> names;
    names.reserve(ranked.group.size());
    for (NodeId id : ranked.group) {
      names.push_back(composed.node(id).name);
    }
    named.push_back(std::move(names));
  }
  return named;
}

}  // namespace indaas
