// Auditing client specification (paper §2, Step 1).
//
// The client tells the agent: (a) the relevant data sources, (b) the desired
// redundancy level, (c) which dependency types to consider, and (d) the
// metric used to quantify independence.

#ifndef SRC_AGENT_SPEC_H_
#define SRC_AGENT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace indaas {

enum class RgAlgorithm {
  kMinimal,   // exact minimal RG algorithm (NP-hard, precise)
  kSampling,  // failure sampling (linear, approximate)
};

enum class RankingMetric {
  kSize,                // size-based ranking (component-set / unweighted)
  kFailureProbability,  // relative-importance ranking (weighted)
};

struct AuditSpecification {
  // Candidate deployments to compare: each entry is the list of servers/VMs
  // that would host the redundant service.
  std::vector<std::vector<std::string>> candidate_deployments;
  // Survivability threshold passed to the fault graph builder (0 = all
  // servers must fail to lose the service).
  uint32_t required_servers = 0;
  // Dependency types to include.
  bool include_network = true;
  bool include_hardware = true;
  bool include_software = true;
  // Software components of interest (empty = all known).
  std::vector<std::string> software_of_interest;
  RgAlgorithm algorithm = RgAlgorithm::kMinimal;
  RankingMetric metric = RankingMetric::kSize;
  // Sampling parameters (used when algorithm == kSampling).
  size_t sampling_rounds = 100000;
  double sampling_bias = 0.05;
  uint64_t seed = 1;
  size_t threads = 1;
  // Audit candidate deployments concurrently (deployments are independent;
  // results keep specification order). 1 = sequential.
  size_t parallel_deployments = 1;
  // How many top RGs feed the independence score (0 = all).
  size_t score_top_n = 0;
};

}  // namespace indaas

#endif  // SRC_AGENT_SPEC_H_
