// Auditing report comparison for periodic audits (paper §2: "Alice might
// also request periodic audits on a deployed configuration to identify
// correlated failure risks that configuration changes or evolution might
// introduce").
//
// Diffing two SIA reports for the same candidate deployments yields, per
// deployment, the risk groups that appeared and disappeared — appearing RGs
// (especially small ones) are the regressions a periodic audit exists to
// catch.

#ifndef SRC_AGENT_REPORT_DIFF_H_
#define SRC_AGENT_REPORT_DIFF_H_

#include <string>
#include <vector>

#include "src/agent/sia_audit.h"
#include "src/util/status.h"

namespace indaas {

struct DeploymentDiff {
  std::vector<std::string> servers;
  // Risk groups (by component names, sorted) present only in the new report.
  std::vector<std::vector<std::string>> appeared;
  // Risk groups present only in the old report.
  std::vector<std::vector<std::string>> disappeared;
  size_t unexpected_before = 0;
  size_t unexpected_after = 0;

  bool Regressed() const {
    return !appeared.empty() || unexpected_after > unexpected_before;
  }
};

struct AuditDiff {
  std::vector<DeploymentDiff> deployments;  // only those present in both reports
  // Deployments present in one report only (configuration drift).
  std::vector<std::vector<std::string>> only_in_before;
  std::vector<std::vector<std::string>> only_in_after;

  bool HasRegressions() const;
};

// Compares two reports; deployments are matched by their server list
// (order-insensitive).
AuditDiff DiffSiaReports(const SiaAuditReport& before, const SiaAuditReport& after);

// Human-readable rendering, quiet when nothing changed.
std::string RenderAuditDiff(const AuditDiff& diff);

}  // namespace indaas

#endif  // SRC_AGENT_REPORT_DIFF_H_
