#include "src/util/strings.h"

#include <cctype>
#include <cstdio>

namespace indaas {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (const auto& field : Split(text, sep)) {
    std::string_view trimmed = Trim(field);
    if (!trimmed.empty()) {
      out.emplace_back(trimmed);
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-3) {
    return StrFormat("%.1f us", seconds * 1e6);
  }
  if (seconds < 1.0) {
    return StrFormat("%.1f ms", seconds * 1e3);
  }
  if (seconds < 120.0) {
    return StrFormat("%.2f s", seconds);
  }
  return StrFormat("%.1f min", seconds / 60.0);
}

}  // namespace indaas
