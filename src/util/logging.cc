#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace indaas {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  (void)level_;
}

}  // namespace indaas
