#include "src/util/logging.h"

#include "src/obs/log.h"

// INDAAS_LOG predates the structured logger (src/obs/log.h) and survives as
// a compatibility shim: the stream text becomes a structured record with
// event "log" and the text under msg=, so legacy call sites share the
// process-wide severity gate and sink (text/JSON/capture) with INDAAS_SLOG
// instead of writing to stderr behind its back. LogLevel and LogSeverity
// deliberately share ordinals.

namespace indaas {

void SetLogLevel(LogLevel level) {
  obs::Logger::Global().SetMinSeverity(static_cast<obs::LogSeverity>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(obs::Logger::Global().min_severity());
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  obs::LogEventBuilder(static_cast<obs::LogSeverity>(level_), file_, line_, "log", 0)
      .Kv("msg", stream_.str());
}

}  // namespace indaas
