// Lightweight Status / Result error-handling primitives.
//
// INDaaS does not throw exceptions across API boundaries; fallible operations
// return Status (no payload) or Result<T> (payload or error), in the spirit of
// absl::Status / zx::result.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace indaas {

// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kParseError,
  kProtocolError,
  kDeadlineExceeded,  // an I/O or RPC deadline elapsed before completion
  kUnavailable,       // transient connectivity failure; safe to retry
};

// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error value without a payload.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  // Constructs a status with the given code and message. `code` should not be
  // kOk; use the default constructor for success.
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status ResourceExhaustedError(std::string message);
Status ParseError(std::string message);
Status ProtocolError(std::string message);
Status DeadlineExceededError(std::string message);
Status UnavailableError(std::string message);

// A value of type T, or an error Status. Access to value() asserts ok().
template <typename T>
class Result {
 public:
  // Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  // Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }

  // Status of the result; OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

// Propagates an error Status from an expression that yields Status.
#define INDAAS_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::indaas::Status indaas_status_ = (expr); \
    if (!indaas_status_.ok()) {               \
      return indaas_status_;                  \
    }                                         \
  } while (false)

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define INDAAS_CONCAT_INNER_(a, b) a##b
#define INDAAS_CONCAT_(a, b) INDAAS_CONCAT_INNER_(a, b)
#define INDAAS_ASSIGN_OR_RETURN(lhs, expr) \
  INDAAS_ASSIGN_OR_RETURN_IMPL_(INDAAS_CONCAT_(indaas_result_, __LINE__), lhs, expr)
#define INDAAS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace indaas

#endif  // SRC_UTIL_STATUS_H_
