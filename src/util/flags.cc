#include "src/util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/strings.h"

namespace indaas {

void FlagSet::AddInt(const std::string& name, int64_t* target, const std::string& help) {
  flags_[name] = Flag{Type::kInt, target, help};
}
void FlagSet::AddDouble(const std::string& name, double* target, const std::string& help) {
  flags_[name] = Flag{Type::kDouble, target, help};
}
void FlagSet::AddBool(const std::string& name, bool* target, const std::string& help) {
  flags_[name] = Flag{Type::kBool, target, help};
}
void FlagSet::AddString(const std::string& name, std::string* target, const std::string& help) {
  flags_[name] = Flag{Type::kString, target, help};
}

Status FlagSet::SetValue(const std::string& name, const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      int64_t parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("flag --" + name + ": expected integer, got '" + value + "'");
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return InvalidArgumentError("flag --" + name + ": expected number, got '" + value + "'");
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return InvalidArgumentError("flag --" + name + ": expected bool, got '" + value + "'");
      }
      return Status::Ok();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
  }
  return InternalError("unreachable flag type");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return InvalidArgumentError("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    if (arg == "help") {
      PrintHelp(argv[0]);
      return FailedPreconditionError("--help requested");
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    // Boolean negation: --no-foo.
    if (!has_value && StartsWith(name, "no-")) {
      std::string base = name.substr(3);
      auto it = flags_.find(base);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        *static_cast<bool*>(it->second.target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return InvalidArgumentError("flag --" + name + " requires a value");
      }
      value = argv[++i];
    }
    INDAAS_RETURN_IF_ERROR(SetValue(name, it->second, value));
  }
  return Status::Ok();
}

void FlagSet::PrintHelp(const std::string& program) const {
  std::printf("Usage: %s [flags]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    const char* type = "";
    switch (flag.type) {
      case Type::kInt:
        type = "int";
        break;
      case Type::kDouble:
        type = "double";
        break;
      case Type::kBool:
        type = "bool";
        break;
      case Type::kString:
        type = "string";
        break;
    }
    std::printf("  --%-24s (%s) %s\n", name.c_str(), type, flag.help.c_str());
  }
}

}  // namespace indaas
