// Small string utilities used across the library (splitting, joining,
// trimming, predicates, and printf-style formatting).

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace indaas {

// Splits `text` on `sep`; empty fields are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Splits and trims whitespace from every field, dropping empty results.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Renders bytes as a human-readable size ("1.50 MB").
std::string HumanBytes(double bytes);

// Renders seconds as a human-readable duration ("3.2 s", "45 ms").
std::string HumanSeconds(double seconds);

}  // namespace indaas

#endif  // SRC_UTIL_STRINGS_H_
