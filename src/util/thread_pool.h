// Fixed-size worker pool used to parallelize failure-sampling rounds and
// per-deployment audits.

#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace indaas {

// A simple FIFO thread pool. Tasks are std::function<void()>; Wait() blocks
// until all submitted tasks have run. Destruction waits for queued tasks.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for execution.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // fn must be safe to invoke concurrently.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Chunked variant for tight loops: runs fn(begin, end) over contiguous
  // chunks of [0, n), each at most `grain` indices long (grain 0 picks one
  // chunk per worker), so the per-element cost is a plain loop iteration
  // instead of a std::function dispatch. Chunk boundaries depend only on
  // n and grain, never on the worker count, so callers that merge per-chunk
  // results in chunk order get thread-count-independent output.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace indaas

#endif  // SRC_UTIL_THREAD_POOL_H_
