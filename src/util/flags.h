// Minimal command-line flag parsing for the benchmark harnesses and examples.
//
// Supports --name=value and --name value forms, plus boolean --name /
// --no-name. Unknown flags are reported as errors so typos in experiment
// parameters do not silently run the wrong configuration.

#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace indaas {

// Declarative flag registry: register flags, then Parse(argc, argv).
class FlagSet {
 public:
  // Registers a flag bound to `target`; `help` is shown by PrintHelp().
  void AddInt(const std::string& name, int64_t* target, const std::string& help);
  void AddDouble(const std::string& name, double* target, const std::string& help);
  void AddBool(const std::string& name, bool* target, const std::string& help);
  void AddString(const std::string& name, std::string* target, const std::string& help);

  // Parses argv, updating bound targets. Returns an error on unknown flags or
  // malformed values. Recognizes --help and reports it via kFailedPrecondition
  // after printing usage.
  Status Parse(int argc, char** argv);

  // Writes usage text for all registered flags to stdout.
  void PrintHelp(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    void* target;
    std::string help;
  };
  Status SetValue(const std::string& name, const Flag& flag, const std::string& value);
  std::map<std::string, Flag> flags_;
};

}  // namespace indaas

#endif  // SRC_UTIL_FLAGS_H_
