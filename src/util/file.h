// Whole-file read/write helpers with Status-based error reporting.

#ifndef SRC_UTIL_FILE_H_
#define SRC_UTIL_FILE_H_

#include <string>

#include "src/util/status.h"

namespace indaas {

// Reads the entire file into a string.
Result<std::string> ReadFile(const std::string& path);

// Writes (creates/truncates) the file with the given contents.
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace indaas

#endif  // SRC_UTIL_FILE_H_
