// Wall-clock timing helpers for benchmarks and progress reporting.

#ifndef SRC_UTIL_TIMER_H_
#define SRC_UTIL_TIMER_H_

#include <chrono>

namespace indaas {

// Measures elapsed wall time from construction (or the last Reset()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace indaas

#endif  // SRC_UTIL_TIMER_H_
