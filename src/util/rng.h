// Deterministic pseudo-random number generation.
//
// xoshiro256** — fast, high-quality, reproducible across platforms. Used by the
// failure sampling algorithm (millions of coin flips per round sweep), topology
// generation, and synthetic workload generation. Not cryptographically secure;
// crypto code uses its own entropy handling (see src/crypto/).

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace indaas {

// xoshiro256** 1.0 by Blackman & Vigna, seeded via SplitMix64.
class Rng {
 public:
  // Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound) using Lemire's unbiased method. bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Splits off an independently-seeded child generator (for per-thread use).
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace indaas

#endif  // SRC_UTIL_RNG_H_
