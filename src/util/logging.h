// Minimal leveled logging to stderr. Intended for library diagnostics and the
// benchmark harnesses; levels can be silenced globally (tests set kWarning).

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>

namespace indaas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal: stream-collecting log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace indaas

#define INDAAS_LOG(level)                                                             \
  if (::indaas::LogLevel::k##level < ::indaas::GetLogLevel()) {                       \
  } else                                                                              \
    ::indaas::LogMessage(::indaas::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // SRC_UTIL_LOGGING_H_
