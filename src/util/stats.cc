#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace indaas {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace indaas
