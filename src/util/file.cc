#include "src/util/file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace indaas {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open '" + path + "': " + std::strerror(errno));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return InternalError("read error on '" + path + "'");
  }
  return contents;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot create '" + path + "': " + std::strerror(errno));
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size() || std::fclose(file) != 0;
  if (failed) {
    return InternalError("write error on '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace indaas
