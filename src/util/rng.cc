#include "src/util/rng.h"

#include <algorithm>

namespace indaas {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's multiply-shift rejection method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits → double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace indaas
