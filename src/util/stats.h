// Descriptive statistics and an ASCII table printer for experiment output.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <string>
#include <vector>

namespace indaas {

// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Returns the p-th percentile (0..100) of `values` by linear interpolation.
// `values` need not be sorted; an empty input yields 0.
double Percentile(std::vector<double> values, double p);

// Accumulates rows and renders an aligned plain-text table, in the style of
// the tables in the paper's evaluation section.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders with column alignment and a header separator.
  std::string ToString() const;

  // Convenience: render straight to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace indaas

#endif  // SRC_UTIL_STATS_H_
