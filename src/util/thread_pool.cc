#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"

namespace indaas {
namespace {

// Pool instruments, resolved once per process (DESIGN.md §6). Queue depth
// and worker count are gauges with high-water marks; task latency lands in a
// log-scaled histogram; busy_micros accumulates execution time so
// utilization = busy_micros / (workers x wall_micros).
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Gauge* workers;
  obs::Counter* tasks_total;
  obs::Counter* busy_micros;
  obs::Histogram* task_micros;
};

PoolMetrics& Metrics() {
  static PoolMetrics metrics = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    return PoolMetrics{
        registry.GetGauge("threadpool.queue_depth"),
        registry.GetGauge("threadpool.workers"),
        registry.GetCounter("threadpool.tasks_total"),
        registry.GetCounter("threadpool.busy_micros"),
        registry.GetHistogram("threadpool.task_micros",
                              {10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7}),
    };
  }();
  return metrics;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Metrics().workers->Add(static_cast<int64_t>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
  Metrics().workers->Add(-static_cast<int64_t>(workers_.size()));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  Metrics().queue_depth->Add(1);
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Chunk the index space so each worker grabs contiguous ranges.
  size_t chunks = std::min(n, workers_.size() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  ParallelForChunked(n, chunk_size, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

void ThreadPool::ParallelForChunked(size_t n, size_t grain,
                                    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = (n + workers_.size() - 1) / workers_.size();
  }
  size_t chunks = (n + grain - 1) / grain;
  // Workers pull chunk indices from a shared counter; at most one queued
  // task per worker regardless of chunk count.
  std::atomic<size_t> next_chunk{0};
  size_t tasks = std::min(chunks, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([&, grain, n] {
      for (;;) {
        size_t chunk = next_chunk.fetch_add(1);
        size_t begin = chunk * grain;
        if (begin >= n) {
          return;
        }
        fn(begin, std::min(begin + grain, n));
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  // Pool workers run every CPU-bound RPC, so they are exactly the threads a
  // profile of a busy server must see (unregistered threads are invisible).
  obs::Profiler::Global().RegisterCurrentThread();
  PoolMetrics& metrics = Metrics();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down with an empty queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    metrics.queue_depth->Add(-1);
    uint64_t start = NowMicros();
    task();
    uint64_t elapsed = NowMicros() - start;
    metrics.tasks_total->Increment();
    metrics.busy_micros->Add(elapsed);
    metrics.task_micros->Record(static_cast<double>(elapsed));
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace indaas
