#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace indaas {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  // Chunk the index space so each worker grabs contiguous ranges.
  size_t chunks = std::min(n, workers_.size() * 4);
  size_t chunk_size = (n + chunks - 1) / chunks;
  ParallelForChunked(n, chunk_size, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
  });
}

void ThreadPool::ParallelForChunked(size_t n, size_t grain,
                                    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    grain = (n + workers_.size() - 1) / workers_.size();
  }
  size_t chunks = (n + grain - 1) / grain;
  // Workers pull chunk indices from a shared counter; at most one queued
  // task per worker regardless of chunk count.
  std::atomic<size_t> next_chunk{0};
  size_t tasks = std::min(chunks, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([&, grain, n] {
      for (;;) {
        size_t chunk = next_chunk.fetch_add(1);
        size_t begin = chunk * grain;
        if (begin >= n) {
          return;
        }
        fn(begin, std::min(begin + grain, n));
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down with an empty queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace indaas
