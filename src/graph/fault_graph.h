// Fault graph representation (paper §4.1.1, Figure 4).
//
// A fault graph is a rooted DAG of failure events. Leaf nodes are *basic
// events* (component failures); internal nodes combine child failures through
// an input gate: OR (any child failure propagates), AND (all children must
// fail), or k-of-n (at least k children must fail — the paper's n-of-m
// redundancy gate). The root is the *top event*: failure of the whole
// redundancy deployment. Each event may carry a failure probability for
// fault-set-level reasoning.

#ifndef SRC_GRAPH_FAULT_GRAPH_H_
#define SRC_GRAPH_FAULT_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace indaas {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// Sentinel for "no failure probability known" (component-set level).
inline constexpr double kUnknownProb = -1.0;

enum class GateType : uint8_t {
  kBasic,  // leaf component-failure event
  kOr,     // any child failing fails this event
  kAnd,    // all children failing fails this event
  kKofN,   // at least k children failing fails this event
};

const char* GateTypeName(GateType type);

// One event node in a fault graph.
struct FaultNode {
  std::string name;
  GateType gate = GateType::kBasic;
  uint32_t k = 0;                      // threshold, k-of-n gates only
  double failure_prob = kUnknownProb;  // basic events only
  std::vector<NodeId> children;
};

// Mutable fault graph builder + analyzer substrate.
//
// Typical lifecycle: add nodes, SetTopEvent(), Validate() once, then hand the
// graph to the SIA algorithms. Validate() also caches the topological order
// used by Evaluate().
class FaultGraph {
 public:
  // Adds a basic (leaf) event. Names must be unique within a graph.
  NodeId AddBasicEvent(const std::string& name, double failure_prob = kUnknownProb);

  // Adds an OR/AND gate over `children`.
  NodeId AddGate(const std::string& name, GateType gate, std::vector<NodeId> children);

  // Adds a k-of-n gate: fails when >= k of `children` fail.
  NodeId AddKofNGate(const std::string& name, uint32_t k, std::vector<NodeId> children);

  // Appends another child to an existing gate.
  Status AddChild(NodeId gate, NodeId child);

  // Converts a basic event into a gate over `children`, keeping its id and
  // name. Used by graph composition to splice one service's fault graph in
  // place of a basic "service X fails" event.
  Status ConvertBasicToGate(NodeId id, GateType gate, std::vector<NodeId> children);

  void SetTopEvent(NodeId id) { top_event_ = id; }
  NodeId top_event() const { return top_event_; }

  // Structural checks: ids in range, unique names, basic events childless,
  // gates non-empty, valid k, acyclic, top event set and non-basic (unless
  // the graph is a single basic event). Caches the topological order.
  Status Validate();

  bool validated() const { return validated_; }

  // --- Accessors ---

  size_t NodeCount() const { return nodes_.size(); }
  const FaultNode& node(NodeId id) const { return nodes_[id]; }

  // Looks up a node id by name.
  Result<NodeId> FindNode(const std::string& name) const;

  // Ids of all basic events, in insertion order.
  const std::vector<NodeId>& BasicEvents() const { return basic_events_; }

  // Child-before-parent order over all nodes; valid after Validate().
  const std::vector<NodeId>& TopologicalOrder() const { return topo_order_; }

  // --- Evaluation ---

  // Given a failure flag per node id for basic events (non-basic entries
  // ignored), computes each event's failure state bottom-up and returns the
  // top event's state. `state` must have NodeCount() entries; it is
  // overwritten for non-basic nodes (scratch reuse across sampling rounds).
  // Requires Validate() to have succeeded.
  bool Evaluate(std::vector<uint8_t>& state) const;

  // Mutable probability access (used when assigning measured probabilities
  // after construction).
  Status SetFailureProb(NodeId id, double prob);

  // --- Export ---

  // Graphviz DOT rendering (basic events as boxes, gates labeled).
  std::string ToDot(const std::string& graph_name = "fault_graph") const;

 private:
  NodeId AddNode(FaultNode node);

  std::vector<FaultNode> nodes_;
  std::unordered_map<std::string, NodeId> name_index_;
  std::vector<NodeId> basic_events_;
  std::vector<NodeId> topo_order_;
  NodeId top_event_ = kInvalidNode;
  bool validated_ = false;
};

}  // namespace indaas

#endif  // SRC_GRAPH_FAULT_GRAPH_H_
