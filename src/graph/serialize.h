// Fault graph text serialization.
//
// A line-oriented format for persisting and exchanging fault graphs (the
// auditing agent can hand a client the graph behind a report, and the CLI
// can round-trip graphs between runs):
//
//   faultgraph v1
//   node 0 basic "net:tor1" prob=0.05
//   node 3 or "S1 fails" children=0,1,2
//   node 7 and "deployment fails" children=3,6
//   node 9 kofn k=2 "quorum fails" children=3,6,8
//   top 7
//
// Node ids must be dense and children must precede parents (the natural
// order FaultGraph produces). `prob=` is omitted for unknown probabilities.

#ifndef SRC_GRAPH_SERIALIZE_H_
#define SRC_GRAPH_SERIALIZE_H_

#include <string>
#include <string_view>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

// Emits the textual form. The graph must be validated.
Result<std::string> SerializeFaultGraph(const FaultGraph& graph);

// Parses and validates a graph from its textual form.
Result<FaultGraph> ParseFaultGraph(std::string_view text);

}  // namespace indaas

#endif  // SRC_GRAPH_SERIALIZE_H_
