#include "src/graph/fault_graph.h"

#include <algorithm>

#include "src/util/strings.h"

namespace indaas {

const char* GateTypeName(GateType type) {
  switch (type) {
    case GateType::kBasic:
      return "BASIC";
    case GateType::kOr:
      return "OR";
    case GateType::kAnd:
      return "AND";
    case GateType::kKofN:
      return "K-OF-N";
  }
  return "?";
}

NodeId FaultGraph::AddNode(FaultNode node) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  name_index_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  validated_ = false;
  return id;
}

NodeId FaultGraph::AddBasicEvent(const std::string& name, double failure_prob) {
  FaultNode node;
  node.name = name;
  node.gate = GateType::kBasic;
  node.failure_prob = failure_prob;
  NodeId id = AddNode(std::move(node));
  basic_events_.push_back(id);
  return id;
}

NodeId FaultGraph::AddGate(const std::string& name, GateType gate, std::vector<NodeId> children) {
  FaultNode node;
  node.name = name;
  node.gate = gate;
  node.children = std::move(children);
  return AddNode(std::move(node));
}

NodeId FaultGraph::AddKofNGate(const std::string& name, uint32_t k, std::vector<NodeId> children) {
  FaultNode node;
  node.name = name;
  node.gate = GateType::kKofN;
  node.k = k;
  node.children = std::move(children);
  return AddNode(std::move(node));
}

Status FaultGraph::AddChild(NodeId gate, NodeId child) {
  if (gate >= nodes_.size() || child >= nodes_.size()) {
    return OutOfRangeError("AddChild: node id out of range");
  }
  if (nodes_[gate].gate == GateType::kBasic) {
    return InvalidArgumentError("AddChild: cannot add children to a basic event");
  }
  nodes_[gate].children.push_back(child);
  validated_ = false;
  return Status::Ok();
}

Status FaultGraph::ConvertBasicToGate(NodeId id, GateType gate, std::vector<NodeId> children) {
  if (id >= nodes_.size()) {
    return OutOfRangeError("ConvertBasicToGate: bad node id");
  }
  if (nodes_[id].gate != GateType::kBasic) {
    return InvalidArgumentError("ConvertBasicToGate: node '" + nodes_[id].name +
                                "' is not a basic event");
  }
  if (gate == GateType::kBasic || children.empty()) {
    return InvalidArgumentError("ConvertBasicToGate: need a gate type and children");
  }
  nodes_[id].gate = gate;
  nodes_[id].children = std::move(children);
  nodes_[id].failure_prob = kUnknownProb;
  basic_events_.erase(std::remove(basic_events_.begin(), basic_events_.end(), id),
                      basic_events_.end());
  validated_ = false;
  return Status::Ok();
}

Result<NodeId> FaultGraph::FindNode(const std::string& name) const {
  auto it = name_index_.find(name);
  if (it == name_index_.end()) {
    return NotFoundError("no node named '" + name + "'");
  }
  return it->second;
}

Status FaultGraph::Validate() {
  if (nodes_.empty()) {
    return FailedPreconditionError("Validate: empty graph");
  }
  if (top_event_ == kInvalidNode || top_event_ >= nodes_.size()) {
    return FailedPreconditionError("Validate: top event not set");
  }
  if (name_index_.size() != nodes_.size()) {
    return InvalidArgumentError("Validate: duplicate node names");
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const FaultNode& node = nodes_[id];
    if (node.gate == GateType::kBasic) {
      if (!node.children.empty()) {
        return InvalidArgumentError("Validate: basic event '" + node.name + "' has children");
      }
      continue;
    }
    if (node.children.empty()) {
      return InvalidArgumentError("Validate: gate '" + node.name + "' has no children");
    }
    for (NodeId child : node.children) {
      if (child >= nodes_.size()) {
        return OutOfRangeError("Validate: gate '" + node.name + "' references bad child id");
      }
    }
    if (node.gate == GateType::kKofN) {
      if (node.k == 0 || node.k > node.children.size()) {
        return InvalidArgumentError(
            StrFormat("Validate: gate '%s' has k=%u outside [1, %zu]", node.name.c_str(), node.k,
                      node.children.size()));
      }
    }
  }
  // Kahn's algorithm for cycle detection + topological order (children first).
  std::vector<uint32_t> pending_children(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> parents(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    pending_children[id] = static_cast<uint32_t>(nodes_[id].children.size());
    for (NodeId child : nodes_[id].children) {
      parents[child].push_back(id);
    }
  }
  topo_order_.clear();
  topo_order_.reserve(nodes_.size());
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pending_children[id] == 0) {
      ready.push_back(id);
    }
  }
  while (!ready.empty()) {
    NodeId id = ready.back();
    ready.pop_back();
    topo_order_.push_back(id);
    for (NodeId parent : parents[id]) {
      if (--pending_children[parent] == 0) {
        ready.push_back(parent);
      }
    }
  }
  if (topo_order_.size() != nodes_.size()) {
    return InvalidArgumentError("Validate: fault graph contains a cycle");
  }
  validated_ = true;
  return Status::Ok();
}

bool FaultGraph::Evaluate(std::vector<uint8_t>& state) const {
  for (NodeId id : topo_order_) {
    const FaultNode& node = nodes_[id];
    switch (node.gate) {
      case GateType::kBasic:
        break;  // Caller-supplied.
      case GateType::kOr: {
        uint8_t failed = 0;
        for (NodeId child : node.children) {
          if (state[child] != 0) {
            failed = 1;
            break;
          }
        }
        state[id] = failed;
        break;
      }
      case GateType::kAnd: {
        uint8_t failed = 1;
        for (NodeId child : node.children) {
          if (state[child] == 0) {
            failed = 0;
            break;
          }
        }
        state[id] = failed;
        break;
      }
      case GateType::kKofN: {
        uint32_t failures = 0;
        for (NodeId child : node.children) {
          failures += state[child];
        }
        state[id] = failures >= node.k ? 1 : 0;
        break;
      }
    }
  }
  return state[top_event_] != 0;
}

Status FaultGraph::SetFailureProb(NodeId id, double prob) {
  if (id >= nodes_.size()) {
    return OutOfRangeError("SetFailureProb: bad node id");
  }
  if (prob != kUnknownProb && (prob < 0.0 || prob > 1.0)) {
    return InvalidArgumentError("SetFailureProb: probability must be in [0,1]");
  }
  nodes_[id].failure_prob = prob;
  return Status::Ok();
}

std::string FaultGraph::ToDot(const std::string& graph_name) const {
  std::string out = "digraph \"" + graph_name + "\" {\n  rankdir=BT;\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const FaultNode& node = nodes_[id];
    std::string label = node.name;
    if (node.gate == GateType::kKofN) {
      label += StrFormat("\\n[%u-of-%zu]", node.k, node.children.size());
    } else if (node.gate != GateType::kBasic) {
      label += std::string("\\n[") + GateTypeName(node.gate) + "]";
    }
    if (node.failure_prob != kUnknownProb) {
      label += StrFormat("\\np=%.3g", node.failure_prob);
    }
    const char* shape = node.gate == GateType::kBasic ? "box" : "ellipse";
    const char* style = id == top_event_ ? ", style=bold" : "";
    out += StrFormat("  n%u [label=\"%s\", shape=%s%s];\n", id, label.c_str(), shape, style);
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId child : nodes_[id].children) {
      out += StrFormat("  n%u -> n%u;\n", child, id);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace indaas
