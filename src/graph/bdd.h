// Reduced ordered binary decision diagrams (ROBDDs) for exact fault graph
// probability analysis.
//
// Inclusion-exclusion over minimal risk groups (§4.1.3) is exponential in
// the number of groups; the classical fault-tree-analysis alternative
// (Vesely et al. [60] lineage) compiles the monotone structure function into
// a BDD and reads the top-event probability off it in time linear in BDD
// size. Used by the ranking and importance code when graphs outgrow exact
// inclusion-exclusion.

#ifndef SRC_GRAPH_BDD_H_
#define SRC_GRAPH_BDD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

using BddRef = uint32_t;
inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

// A shared-node BDD store over variables 0..num_vars-1 (variable order =
// numeric order). Supports the monotone operations fault graphs need.
class BddManager {
 public:
  // `max_nodes` bounds memory; operations exceeding it fail cleanly.
  explicit BddManager(size_t max_nodes = 4000000);

  // The BDD testing a single variable.
  Result<BddRef> Var(uint32_t var);

  Result<BddRef> And(BddRef a, BddRef b);
  Result<BddRef> Or(BddRef a, BddRef b);

  // Pr[f = 1] given independent Pr[var_i = 1] = probs[i].
  double Probability(BddRef f, const std::vector<double>& probs) const;

  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    uint32_t var;
    BddRef lo;
    BddRef hi;
  };
  enum class Op : uint8_t { kAnd, kOr };

  Result<BddRef> MakeNode(uint32_t var, BddRef lo, BddRef hi);
  Result<BddRef> Apply(Op op, BddRef a, BddRef b);
  uint32_t VarOf(BddRef ref) const;

  size_t max_nodes_;
  std::vector<Node> nodes_;  // [0]=false, [1]=true sentinels
  // Unique table per variable: (lo,hi) packed exactly into 64 bits -> ref.
  std::vector<std::unordered_map<uint64_t, BddRef>> unique_;
  std::unordered_map<uint64_t, BddRef> apply_cache_[2];  // per op
};

// Compiles the fault graph's structure function into a BDD (basic event i is
// variable i in BasicEvents() order) and returns the exact top-event
// probability; events without failure_prob use `default_prob`.
Result<double> TopEventProbabilityBdd(const FaultGraph& graph, double default_prob,
                                      size_t max_nodes = 4000000);

// Compiles the structure function and hands back manager + root + the
// variable probability vector, for callers that evaluate several
// probability assignments (e.g. Birnbaum conditioning).
struct CompiledFaultGraph {
  std::unique_ptr<BddManager> manager;
  BddRef root = kBddFalse;
  std::vector<double> probs;           // per BasicEvents() index
  std::vector<NodeId> variable_order;  // variable -> basic event node id
};

Result<CompiledFaultGraph> CompileFaultGraph(const FaultGraph& graph, double default_prob,
                                             size_t max_nodes = 4000000);

}  // namespace indaas

#endif  // SRC_GRAPH_BDD_H_
