// The three levels of dependency detail from paper §4.1.1 / Figure 4:
// component-set, fault-set, and fault graph — plus the downgrade operators
// between them and builders for the two-level "AND-of-ORs" graphs of
// Figures 4(a) and 4(b).

#ifndef SRC_GRAPH_LEVELS_H_
#define SRC_GRAPH_LEVELS_H_

#include <string>
#include <vector>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

// Component-set level (Fig. 4a): each data source depends on a flat set of
// components; only shared membership matters. Components are normalized
// string identifiers; the vector is kept sorted and deduplicated.
struct ComponentSet {
  std::string source;                   // data source name, e.g. "E1"
  std::vector<std::string> components;  // sorted, unique
};

// Sorts + dedupes `components` in place.
void NormalizeComponentSet(ComponentSet& set);

// Fault-set level (Fig. 4b): components annotated with failure probabilities.
struct WeightedEvent {
  std::string component;
  double failure_prob = kUnknownProb;
};

struct FaultSet {
  std::string source;
  std::vector<WeightedEvent> events;  // sorted by component, unique
};

void NormalizeFaultSet(FaultSet& set);

// Components present in at least two of the given sets — the shared
// dependencies that undermine redundancy (e.g. A2 in Fig. 4a).
std::vector<std::string> SharedComponents(const std::vector<ComponentSet>& sets);

// Components present in *all* sets (intersection).
std::vector<std::string> CommonToAll(const std::vector<ComponentSet>& sets);

// Union of all components across sets.
std::vector<std::string> UnionOfAll(const std::vector<ComponentSet>& sets);

// Builds the two-level AND-of-ORs fault graph of Fig. 4a: top event is an
// n-of-m AND over the data sources (n = `required`, default all = plain AND);
// each source is an OR over its components. Shared component names map to a
// single shared basic event. Requires >= 1 set and 1 <= required <= #sets.
Result<FaultGraph> BuildFromComponentSets(const std::vector<ComponentSet>& sets,
                                          uint32_t required = 0);

// Same, from fault-sets: basic events carry failure probabilities (Fig. 4b).
// If the same component appears in several sets with conflicting
// probabilities, the maximum is used.
Result<FaultGraph> BuildFromFaultSets(const std::vector<FaultSet>& sets, uint32_t required = 0);

// Downgrade operators ("an information-rich fault graph may be downgraded to
// the lower fault-set or component-set levels of detail", §4.1.1).
//
// Each child of the top event is treated as one data source; its fault-set /
// component-set is the set of basic events reachable from it. Requires a
// validated graph whose top event is a gate.
Result<std::vector<FaultSet>> DowngradeToFaultSets(const FaultGraph& graph);
Result<std::vector<ComponentSet>> DowngradeToComponentSets(const FaultGraph& graph);

}  // namespace indaas

#endif  // SRC_GRAPH_LEVELS_H_
