#include "src/graph/bdd.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/util/strings.h"

namespace indaas {
namespace {

constexpr uint32_t kTerminalVar = 0xFFFFFFFFu;

uint64_t PairKey(BddRef a, BddRef b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

BddManager::BddManager(size_t max_nodes) : max_nodes_(max_nodes) {
  nodes_.push_back(Node{kTerminalVar, kBddFalse, kBddFalse});  // false
  nodes_.push_back(Node{kTerminalVar, kBddTrue, kBddTrue});    // true
}

uint32_t BddManager::VarOf(BddRef ref) const { return nodes_[ref].var; }

Result<BddRef> BddManager::MakeNode(uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) {
    return lo;  // Reduction rule.
  }
  if (var >= unique_.size()) {
    unique_.resize(var + 1);
  }
  uint64_t key = PairKey(lo, hi);
  auto it = unique_[var].find(key);
  if (it != unique_[var].end()) {
    return it->second;
  }
  if (nodes_.size() >= max_nodes_) {
    return ResourceExhaustedError(
        StrFormat("BDD exceeded node budget (%zu nodes)", max_nodes_));
  }
  BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_[var].emplace(key, ref);
  return ref;
}

Result<BddRef> BddManager::Var(uint32_t var) {
  return MakeNode(var, kBddFalse, kBddTrue);
}

Result<BddRef> BddManager::Apply(Op op, BddRef a, BddRef b) {
  // Terminal cases.
  if (op == Op::kAnd) {
    if (a == kBddFalse || b == kBddFalse) {
      return kBddFalse;
    }
    if (a == kBddTrue) {
      return b;
    }
    if (b == kBddTrue || a == b) {
      return a;
    }
  } else {
    if (a == kBddTrue || b == kBddTrue) {
      return kBddTrue;
    }
    if (a == kBddFalse) {
      return b;
    }
    if (b == kBddFalse || a == b) {
      return a;
    }
  }
  if (a > b) {
    std::swap(a, b);  // Commutative: canonicalize the cache key.
  }
  auto& cache = apply_cache_[static_cast<size_t>(op)];
  uint64_t key = PairKey(a, b);
  auto it = cache.find(key);
  if (it != cache.end()) {
    return it->second;
  }
  uint32_t va = VarOf(a);
  uint32_t vb = VarOf(b);
  uint32_t top = std::min(va, vb);
  BddRef a_lo = va == top ? nodes_[a].lo : a;
  BddRef a_hi = va == top ? nodes_[a].hi : a;
  BddRef b_lo = vb == top ? nodes_[b].lo : b;
  BddRef b_hi = vb == top ? nodes_[b].hi : b;
  INDAAS_ASSIGN_OR_RETURN(BddRef lo, Apply(op, a_lo, b_lo));
  INDAAS_ASSIGN_OR_RETURN(BddRef hi, Apply(op, a_hi, b_hi));
  INDAAS_ASSIGN_OR_RETURN(BddRef out, MakeNode(top, lo, hi));
  cache.emplace(key, out);
  return out;
}

Result<BddRef> BddManager::And(BddRef a, BddRef b) { return Apply(Op::kAnd, a, b); }
Result<BddRef> BddManager::Or(BddRef a, BddRef b) { return Apply(Op::kOr, a, b); }

double BddManager::Probability(BddRef f, const std::vector<double>& probs) const {
  std::unordered_map<BddRef, double> memo;
  memo.emplace(kBddFalse, 0.0);
  memo.emplace(kBddTrue, 1.0);
  // Iterative post-order to avoid recursion depth issues.
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    BddRef ref = stack.back();
    if (memo.count(ref) != 0) {
      stack.pop_back();
      continue;
    }
    const Node& node = nodes_[ref];
    auto lo_it = memo.find(node.lo);
    auto hi_it = memo.find(node.hi);
    if (lo_it != memo.end() && hi_it != memo.end()) {
      double p = node.var < probs.size() ? probs[node.var] : 0.0;
      memo.emplace(ref, (1.0 - p) * lo_it->second + p * hi_it->second);
      stack.pop_back();
    } else {
      if (lo_it == memo.end()) {
        stack.push_back(node.lo);
      }
      if (hi_it == memo.end()) {
        stack.push_back(node.hi);
      }
    }
  }
  return memo[f];
}

Result<CompiledFaultGraph> CompileFaultGraph(const FaultGraph& graph, double default_prob,
                                             size_t max_nodes) {
  if (!graph.validated()) {
    return FailedPreconditionError("CompileFaultGraph: graph not validated");
  }
  CompiledFaultGraph out;
  out.manager = std::make_unique<BddManager>(max_nodes);
  BddManager& manager = *out.manager;

  // Basic event -> BDD variable, in BasicEvents() order (ascending node id).
  std::map<NodeId, uint32_t> var_of;
  for (NodeId id : graph.BasicEvents()) {
    uint32_t var = static_cast<uint32_t>(out.variable_order.size());
    var_of.emplace(id, var);
    out.variable_order.push_back(id);
    double p = graph.node(id).failure_prob;
    out.probs.push_back(p == kUnknownProb ? default_prob : p);
  }

  std::vector<BddRef> compiled(graph.NodeCount(), kBddFalse);
  for (NodeId id : graph.TopologicalOrder()) {
    const FaultNode& node = graph.node(id);
    switch (node.gate) {
      case GateType::kBasic: {
        INDAAS_ASSIGN_OR_RETURN(compiled[id], manager.Var(var_of.at(id)));
        break;
      }
      case GateType::kOr: {
        BddRef acc = kBddFalse;
        for (NodeId child : node.children) {
          INDAAS_ASSIGN_OR_RETURN(acc, manager.Or(acc, compiled[child]));
        }
        compiled[id] = acc;
        break;
      }
      case GateType::kAnd: {
        BddRef acc = kBddTrue;
        for (NodeId child : node.children) {
          INDAAS_ASSIGN_OR_RETURN(acc, manager.And(acc, compiled[child]));
        }
        compiled[id] = acc;
        break;
      }
      case GateType::kKofN: {
        // at_least[j] = BDD for "at least j of the children seen so far
        // fail". Monotone recurrence, no negation needed:
        //   at_least[j] <- (child AND at_least[j-1]) OR at_least[j].
        const uint32_t k = node.k;
        std::vector<BddRef> at_least(k + 1, kBddFalse);
        at_least[0] = kBddTrue;
        for (NodeId child : node.children) {
          for (uint32_t j = k; j >= 1; --j) {
            INDAAS_ASSIGN_OR_RETURN(BddRef with_child,
                                    manager.And(compiled[child], at_least[j - 1]));
            INDAAS_ASSIGN_OR_RETURN(at_least[j], manager.Or(at_least[j], with_child));
          }
        }
        compiled[id] = at_least[k];
        break;
      }
    }
  }
  out.root = compiled[graph.top_event()];
  return out;
}

Result<double> TopEventProbabilityBdd(const FaultGraph& graph, double default_prob,
                                      size_t max_nodes) {
  INDAAS_ASSIGN_OR_RETURN(CompiledFaultGraph compiled,
                          CompileFaultGraph(graph, default_prob, max_nodes));
  return compiled.manager->Probability(compiled.root, compiled.probs);
}

}  // namespace indaas
