#include "src/graph/serialize.h"

#include <cstdlib>

#include "src/util/strings.h"

namespace indaas {
namespace {

constexpr const char* kHeader = "faultgraph v1";

// Escapes '"' and '\' inside names.
std::string EscapeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Extracts a quoted name starting at text[pos] == '"'; advances pos past the
// closing quote.
Result<std::string> ParseQuoted(std::string_view text, size_t& pos) {
  if (pos >= text.size() || text[pos] != '"') {
    return ParseError("expected opening quote");
  }
  ++pos;
  std::string out;
  while (pos < text.size()) {
    char c = text[pos++];
    if (c == '\\' && pos < text.size()) {
      out.push_back(text[pos++]);
    } else if (c == '"') {
      return out;
    } else {
      out.push_back(c);
    }
  }
  return ParseError("unterminated quoted name");
}

Result<std::vector<NodeId>> ParseChildList(std::string_view field) {
  if (!StartsWith(field, "children=")) {
    return ParseError("expected children=...: " + std::string(field));
  }
  std::vector<NodeId> children;
  for (const std::string& token : SplitAndTrim(field.substr(9), ',')) {
    char* end = nullptr;
    unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return ParseError("bad child id '" + token + "'");
    }
    children.push_back(static_cast<NodeId>(value));
  }
  if (children.empty()) {
    return ParseError("empty child list");
  }
  return children;
}

}  // namespace

Result<std::string> SerializeFaultGraph(const FaultGraph& graph) {
  if (!graph.validated()) {
    return FailedPreconditionError("SerializeFaultGraph: graph not validated");
  }
  std::string out = kHeader;
  out += '\n';
  for (NodeId id = 0; id < graph.NodeCount(); ++id) {
    const FaultNode& node = graph.node(id);
    switch (node.gate) {
      case GateType::kBasic:
        out += StrFormat("node %u basic \"%s\"", id, EscapeName(node.name).c_str());
        if (node.failure_prob != kUnknownProb) {
          out += StrFormat(" prob=%.17g", node.failure_prob);
        }
        break;
      case GateType::kOr:
      case GateType::kAnd: {
        out += StrFormat("node %u %s \"%s\" children=", id,
                         node.gate == GateType::kOr ? "or" : "and",
                         EscapeName(node.name).c_str());
        std::vector<std::string> ids;
        for (NodeId child : node.children) {
          ids.push_back(std::to_string(child));
        }
        out += Join(ids, ",");
        break;
      }
      case GateType::kKofN: {
        out += StrFormat("node %u kofn k=%u \"%s\" children=", id, node.k,
                         EscapeName(node.name).c_str());
        std::vector<std::string> ids;
        for (NodeId child : node.children) {
          ids.push_back(std::to_string(child));
        }
        out += Join(ids, ",");
        break;
      }
    }
    out += '\n';
  }
  out += StrFormat("top %u\n", graph.top_event());
  return out;
}

Result<FaultGraph> ParseFaultGraph(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t index = 0;
  // Skip leading blanks.
  while (index < lines.size() && Trim(lines[index]).empty()) {
    ++index;
  }
  if (index >= lines.size() || Trim(lines[index]) != kHeader) {
    return ParseError("missing 'faultgraph v1' header");
  }
  ++index;
  FaultGraph graph;
  bool top_set = false;
  for (; index < lines.size(); ++index) {
    std::string_view line = Trim(lines[index]);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    if (StartsWith(line, "top ")) {
      char* end = nullptr;
      std::string id_text(line.substr(4));
      unsigned long top = std::strtoul(id_text.c_str(), &end, 10);
      if (end == id_text.c_str() || !Trim(std::string_view(end)).empty()) {
        return ParseError("bad top line: " + std::string(line));
      }
      if (top >= graph.NodeCount()) {
        return ParseError("top event id out of range");
      }
      graph.SetTopEvent(static_cast<NodeId>(top));
      top_set = true;
      continue;
    }
    if (!StartsWith(line, "node ")) {
      return ParseError("unexpected line: " + std::string(line));
    }
    // node <id> <kind> [k=<k>] "<name>" [prob=<p>] [children=...]
    size_t pos = 5;
    char* end = nullptr;
    std::string rest(line.substr(pos));
    unsigned long id = std::strtoul(rest.c_str(), &end, 10);
    if (end == rest.c_str()) {
      return ParseError("bad node id: " + std::string(line));
    }
    if (id != graph.NodeCount()) {
      return ParseError(StrFormat("node ids must be dense: expected %zu", graph.NodeCount()));
    }
    std::string_view tail = Trim(std::string_view(end));
    // Kind token.
    size_t space = tail.find(' ');
    if (space == std::string_view::npos) {
      return ParseError("truncated node line: " + std::string(line));
    }
    std::string kind(tail.substr(0, space));
    tail = Trim(tail.substr(space));

    uint32_t k = 0;
    std::string k_text;  // outlives `tail`, which may view into it below
    if (kind == "kofn") {
      if (!StartsWith(tail, "k=")) {
        return ParseError("kofn node missing k=: " + std::string(line));
      }
      k_text = std::string(tail.substr(2));
      k = static_cast<uint32_t>(std::strtoul(k_text.c_str(), &end, 10));
      tail = Trim(std::string_view(end));
    }
    size_t name_pos = 0;
    std::string remainder(tail);
    INDAAS_ASSIGN_OR_RETURN(std::string name, ParseQuoted(remainder, name_pos));
    std::string_view after = Trim(std::string_view(remainder).substr(name_pos));

    if (kind == "basic") {
      double prob = kUnknownProb;
      if (StartsWith(after, "prob=")) {
        std::string prob_text(after.substr(5));
        prob = std::strtod(prob_text.c_str(), &end);
        if (end == prob_text.c_str()) {
          return ParseError("bad prob: " + std::string(line));
        }
      } else if (!after.empty()) {
        return ParseError("unexpected trailing content: " + std::string(line));
      }
      graph.AddBasicEvent(name, prob);
      continue;
    }
    INDAAS_ASSIGN_OR_RETURN(std::vector<NodeId> children, ParseChildList(after));
    for (NodeId child : children) {
      if (child >= graph.NodeCount()) {
        return ParseError("child id refers to a later node: " + std::string(line));
      }
    }
    if (kind == "or") {
      graph.AddGate(name, GateType::kOr, std::move(children));
    } else if (kind == "and") {
      graph.AddGate(name, GateType::kAnd, std::move(children));
    } else if (kind == "kofn") {
      graph.AddKofNGate(name, k, std::move(children));
    } else {
      return ParseError("unknown node kind '" + kind + "'");
    }
  }
  if (!top_set) {
    return ParseError("missing 'top' line");
  }
  INDAAS_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace indaas
