#include "src/graph/levels.h"

#include <algorithm>
#include <map>
#include <set>

namespace indaas {

void NormalizeComponentSet(ComponentSet& set) {
  std::sort(set.components.begin(), set.components.end());
  set.components.erase(std::unique(set.components.begin(), set.components.end()),
                       set.components.end());
}

void NormalizeFaultSet(FaultSet& set) {
  std::sort(set.events.begin(), set.events.end(),
            [](const WeightedEvent& a, const WeightedEvent& b) {
              return a.component < b.component;
            });
  // Dedupe by component, keeping the max probability (conservative).
  std::vector<WeightedEvent> out;
  for (const WeightedEvent& event : set.events) {
    if (!out.empty() && out.back().component == event.component) {
      out.back().failure_prob = std::max(out.back().failure_prob, event.failure_prob);
    } else {
      out.push_back(event);
    }
  }
  set.events = std::move(out);
}

std::vector<std::string> SharedComponents(const std::vector<ComponentSet>& sets) {
  std::map<std::string, int> counts;
  for (const ComponentSet& set : sets) {
    for (const std::string& component : set.components) {
      ++counts[component];
    }
  }
  std::vector<std::string> shared;
  for (const auto& [component, count] : counts) {
    if (count >= 2) {
      shared.push_back(component);
    }
  }
  return shared;
}

std::vector<std::string> CommonToAll(const std::vector<ComponentSet>& sets) {
  if (sets.empty()) {
    return {};
  }
  std::map<std::string, size_t> counts;
  for (const ComponentSet& set : sets) {
    for (const std::string& component : set.components) {
      ++counts[component];
    }
  }
  std::vector<std::string> common;
  for (const auto& [component, count] : counts) {
    if (count == sets.size()) {
      common.push_back(component);
    }
  }
  return common;
}

std::vector<std::string> UnionOfAll(const std::vector<ComponentSet>& sets) {
  std::set<std::string> all;
  for (const ComponentSet& set : sets) {
    all.insert(set.components.begin(), set.components.end());
  }
  return std::vector<std::string>(all.begin(), all.end());
}

namespace {

// Shared implementation for the two AND-of-ORs builders.
Result<FaultGraph> BuildTwoLevel(const std::vector<FaultSet>& sets, uint32_t required) {
  if (sets.empty()) {
    return InvalidArgumentError("BuildFromComponentSets: need at least one data source");
  }
  if (required == 0) {
    required = static_cast<uint32_t>(sets.size());
  }
  if (required > sets.size()) {
    return InvalidArgumentError("BuildFromComponentSets: required > number of sources");
  }
  FaultGraph graph;
  // Component name -> shared basic event (this sharing is what encodes the
  // correlated-failure structure).
  std::map<std::string, NodeId> component_nodes;
  std::vector<NodeId> source_gates;
  for (const FaultSet& set : sets) {
    if (set.events.empty()) {
      return InvalidArgumentError("data source '" + set.source + "' has an empty component set");
    }
    std::vector<NodeId> children;
    children.reserve(set.events.size());
    for (const WeightedEvent& event : set.events) {
      auto it = component_nodes.find(event.component);
      NodeId id;
      if (it == component_nodes.end()) {
        id = graph.AddBasicEvent(event.component, event.failure_prob);
        component_nodes.emplace(event.component, id);
      } else {
        id = it->second;
        // Conflicting probabilities: keep the maximum (conservative).
        if (event.failure_prob > graph.node(id).failure_prob) {
          INDAAS_RETURN_IF_ERROR(graph.SetFailureProb(id, event.failure_prob));
        }
      }
      children.push_back(id);
    }
    source_gates.push_back(graph.AddGate(set.source + " fails", GateType::kOr, children));
  }
  NodeId top;
  if (required == sets.size()) {
    top = graph.AddGate("deployment fails", GateType::kAnd, source_gates);
  } else {
    // n-of-m redundancy: the deployment survives while at least `required`
    // sources are up, i.e. fails when more than (m - required) sources fail.
    uint32_t fail_threshold = static_cast<uint32_t>(sets.size()) - required + 1;
    top = graph.AddKofNGate("deployment fails", fail_threshold, source_gates);
  }
  graph.SetTopEvent(top);
  INDAAS_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace

Result<FaultGraph> BuildFromComponentSets(const std::vector<ComponentSet>& sets,
                                          uint32_t required) {
  std::vector<FaultSet> weighted;
  weighted.reserve(sets.size());
  for (const ComponentSet& set : sets) {
    FaultSet fs;
    fs.source = set.source;
    for (const std::string& component : set.components) {
      fs.events.push_back(WeightedEvent{component, kUnknownProb});
    }
    weighted.push_back(std::move(fs));
  }
  return BuildTwoLevel(weighted, required);
}

Result<FaultGraph> BuildFromFaultSets(const std::vector<FaultSet>& sets, uint32_t required) {
  return BuildTwoLevel(sets, required);
}

namespace {

// Collects basic events reachable from `root`.
std::vector<NodeId> ReachableBasics(const FaultGraph& graph, NodeId root) {
  std::vector<NodeId> stack{root};
  std::set<NodeId> visited;
  std::vector<NodeId> basics;
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) {
      continue;
    }
    const FaultNode& node = graph.node(id);
    if (node.gate == GateType::kBasic) {
      basics.push_back(id);
    } else {
      stack.insert(stack.end(), node.children.begin(), node.children.end());
    }
  }
  return basics;
}

}  // namespace

Result<std::vector<FaultSet>> DowngradeToFaultSets(const FaultGraph& graph) {
  if (!graph.validated()) {
    return FailedPreconditionError("DowngradeToFaultSets: graph not validated");
  }
  const FaultNode& top = graph.node(graph.top_event());
  if (top.gate == GateType::kBasic) {
    return InvalidArgumentError("DowngradeToFaultSets: top event is a basic event");
  }
  std::vector<FaultSet> sets;
  sets.reserve(top.children.size());
  for (NodeId source : top.children) {
    FaultSet set;
    set.source = graph.node(source).name;
    for (NodeId basic : ReachableBasics(graph, source)) {
      const FaultNode& node = graph.node(basic);
      set.events.push_back(WeightedEvent{node.name, node.failure_prob});
    }
    NormalizeFaultSet(set);
    sets.push_back(std::move(set));
  }
  return sets;
}

Result<std::vector<ComponentSet>> DowngradeToComponentSets(const FaultGraph& graph) {
  INDAAS_ASSIGN_OR_RETURN(std::vector<FaultSet> fault_sets, DowngradeToFaultSets(graph));
  std::vector<ComponentSet> sets;
  sets.reserve(fault_sets.size());
  for (const FaultSet& fs : fault_sets) {
    ComponentSet cs;
    cs.source = fs.source;
    for (const WeightedEvent& event : fs.events) {
      cs.components.push_back(event.component);
    }
    NormalizeComponentSet(cs);
    sets.push_back(std::move(cs));
  }
  return sets;
}

}  // namespace indaas
