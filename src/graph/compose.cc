#include "src/graph/compose.h"

#include <vector>

namespace indaas {
namespace {

// Deep-copies `src` into `dst`, returning the node id in `dst` corresponding
// to src's top event. Basic events unify by name; gates get unique prefixed
// names.
Result<NodeId> ImportGraph(FaultGraph& dst, const FaultGraph& src, const std::string& prefix) {
  std::vector<NodeId> mapping(src.NodeCount(), kInvalidNode);
  for (NodeId id : src.TopologicalOrder()) {
    const FaultNode& node = src.node(id);
    if (node.gate == GateType::kBasic) {
      auto existing = dst.FindNode(node.name);
      if (existing.ok()) {
        if (dst.node(*existing).gate != GateType::kBasic) {
          return InvalidArgumentError("ComposeFaultGraphs: '" + node.name +
                                      "' is a basic event in one graph and a gate in another");
        }
        mapping[id] = *existing;
        if (node.failure_prob > dst.node(*existing).failure_prob) {
          INDAAS_RETURN_IF_ERROR(dst.SetFailureProb(*existing, node.failure_prob));
        }
      } else {
        mapping[id] = dst.AddBasicEvent(node.name, node.failure_prob);
      }
      continue;
    }
    std::vector<NodeId> children;
    children.reserve(node.children.size());
    for (NodeId child : node.children) {
      children.push_back(mapping[child]);
    }
    std::string name = prefix + "/" + node.name;
    // Keep gate names unique even if the same service is imported twice.
    int suffix = 1;
    while (dst.FindNode(name).ok()) {
      name = prefix + "/" + node.name + "#" + std::to_string(++suffix);
    }
    if (node.gate == GateType::kKofN) {
      mapping[id] = dst.AddKofNGate(name, node.k, std::move(children));
    } else {
      mapping[id] = dst.AddGate(name, node.gate, std::move(children));
    }
  }
  return mapping[src.top_event()];
}

}  // namespace

Result<FaultGraph> ComposeFaultGraphs(const FaultGraph& primary,
                                      const std::map<std::string, const FaultGraph*>& services) {
  if (!primary.validated()) {
    return FailedPreconditionError("ComposeFaultGraphs: primary graph not validated");
  }
  for (const auto& [name, graph] : services) {
    if (graph == nullptr || !graph->validated()) {
      return FailedPreconditionError("ComposeFaultGraphs: service '" + name + "' not validated");
    }
  }
  // Copy the primary graph wholesale (ids preserved: FaultGraph ids are dense
  // insertion indexes, so a structural copy keeps them).
  FaultGraph out;
  for (NodeId id = 0; id < primary.NodeCount(); ++id) {
    const FaultNode& node = primary.node(id);
    if (node.gate == GateType::kBasic) {
      out.AddBasicEvent(node.name, node.failure_prob);
    } else if (node.gate == GateType::kKofN) {
      out.AddKofNGate(node.name, node.k, node.children);
    } else {
      out.AddGate(node.name, node.gate, node.children);
    }
  }
  out.SetTopEvent(primary.top_event());

  for (const auto& [placeholder, service_graph] : services) {
    auto node_id = out.FindNode(placeholder);
    if (!node_id.ok()) {
      return NotFoundError("ComposeFaultGraphs: no placeholder event named '" + placeholder +
                           "'");
    }
    if (out.node(*node_id).gate != GateType::kBasic) {
      return InvalidArgumentError("ComposeFaultGraphs: placeholder '" + placeholder +
                                  "' is not a basic event");
    }
    INDAAS_ASSIGN_OR_RETURN(NodeId service_top, ImportGraph(out, *service_graph, placeholder));
    INDAAS_RETURN_IF_ERROR(
        out.ConvertBasicToGate(*node_id, GateType::kOr, {service_top}));
  }
  INDAAS_RETURN_IF_ERROR(out.Validate());
  return out;
}

}  // namespace indaas
