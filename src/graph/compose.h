// Fault graph composition (§4.1.1, "compose individual dependency graphs
// collected from multiple services into more complex aggregate dependency
// graphs (e.g., EC2 instances depending on services offered by EBS and ELB)").
//
// A primary graph may contain basic events that stand in for whole services
// ("EBS fails"). Composition splices each such service's own fault graph in
// place of the placeholder. Basic events are identified by normalized
// component name, so components shared between the primary graph and a
// service graph (or between two service graphs) unify into a single node —
// exactly the mechanism that surfaces cross-service common dependencies.

#ifndef SRC_GRAPH_COMPOSE_H_
#define SRC_GRAPH_COMPOSE_H_

#include <map>
#include <string>

#include "src/graph/fault_graph.h"
#include "src/util/status.h"

namespace indaas {

// Returns a new graph: `primary` with each basic event named by a key of
// `services` replaced by the corresponding service graph's structure.
//
// Rules:
//  * service graphs must be validated;
//  * service basic events merge with same-named basic events already present;
//  * service gate names are prefixed with "<service>/" to stay unique;
//  * a placeholder that does not exist in `primary` is an error.
Result<FaultGraph> ComposeFaultGraphs(const FaultGraph& primary,
                                      const std::map<std::string, const FaultGraph*>& services);

}  // namespace indaas

#endif  // SRC_GRAPH_COMPOSE_H_
