// Cross-process trace identity (DESIGN.md §6, "distributed tracing").
//
// A TraceContext names the distributed request a piece of work belongs to: a
// nonzero 64-bit trace id shared by every process that touches the request,
// plus the wire span id of the remote caller's span (0 = unknown). The
// context rides ahead of RPC payloads in the frame trace extension
// (src/net/frame.h): AuditClient and PiaPeer inject the calling thread's
// context, server-side pumps adopt it for the duration of one request, and
// every span recorded while a context is installed carries its trace id —
// which is what lets `indaas trace-merge` stitch per-process Chrome traces
// into one timeline.
//
// The thread-local context is managed strictly RAII (ScopedTraceContext
// restores the previous value on destruction), so pool threads that serve
// many requests never leak one request's identity into the next.
//
// Wire span ids are local span ids + 1 so that 0 can mean "no span" (a
// client with tracing disabled still propagates its trace id, just without
// a parent span).

#ifndef SRC_OBS_PROPAGATE_H_
#define SRC_OBS_PROPAGATE_H_

#include <cstdint>

namespace indaas {
namespace obs {

struct TraceContext {
  uint64_t trace_id = 0;        // 0 = no distributed context
  uint64_t parent_span_id = 0;  // remote caller's wire span id, 0 = unknown

  bool valid() const { return trace_id != 0; }
};

// The calling thread's current context (invalid when none is installed).
TraceContext CurrentTraceContext();

// Address of the calling thread's trace-id word. The sampling profiler
// (src/obs/profiler.h) captures it at thread registration so its SIGPROF
// handler can read the ambient trace id through a plain pointer, with no
// TLS resolution in signal context. Valid for the thread's lifetime.
const uint64_t* CurrentTraceIdAddress();

// A fresh nonzero trace id: a per-process random fingerprint mixed with a
// process-wide counter, so ids from different processes started in the same
// microsecond still diverge.
uint64_t NewTraceId();

// Deterministic trace id derived from a shared session seed. PIA ring peers
// have no request originator to adopt from — every peer derives the same id
// from the session seed they already agree on, so one ring session is one
// trace without any extra coordination.
uint64_t DeriveTraceId(uint64_t seed);

// Converts between local span ids (TraceRecorder claim order, -1 = none)
// and wire span ids (0 = none).
inline uint64_t WireSpanId(int64_t local_id) {
  return local_id < 0 ? 0 : static_cast<uint64_t>(local_id) + 1;
}

// Installs `context` as the calling thread's context for the scope and
// restores the previous one on destruction. Installing an invalid context
// is meaningful: it clears the thread's identity (a traceless request on a
// pool thread must not inherit the previous request's trace).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_PROPAGATE_H_
