#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace indaas {
namespace obs {
namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendKeyValue(std::string& out, const std::string& key, const std::string& raw_value) {
  out += '"';
  out += JsonEscape(key);
  out += "\":";
  out += raw_value;
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans) {
  std::vector<StageStat> stages;
  std::map<std::string, size_t> index;
  for (const SpanRecord& span : spans) {
    auto it = index.find(span.name);
    if (it == index.end()) {
      it = index.emplace(span.name, stages.size()).first;
      stages.push_back(StageStat{span.name, 0, 0, span.dur_us, span.dur_us});
    }
    StageStat& stat = stages[it->second];
    ++stat.count;
    stat.total_us += span.dur_us;
    stat.min_us = std::min(stat.min_us, span.dur_us);
    stat.max_us = std::max(stat.max_us, span.dur_us);
  }
  return stages;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot, const std::vector<StageStat>& stages) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, counter.name, std::to_string(counter.value));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, gauge.name,
                   "{\"value\":" + std::to_string(gauge.value) +
                       ",\"max\":" + std::to_string(gauge.max) + "}");
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& histogram : snapshot.histograms) {
    std::string body = "{\"bounds\":[";
    for (size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b != 0) {
        body += ',';
      }
      body += FormatDouble(histogram.bounds[b]);
    }
    body += "],\"counts\":[";
    for (size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) {
        body += ',';
      }
      body += std::to_string(histogram.counts[b]);
    }
    body += "],\"count\":" + std::to_string(histogram.count) +
            ",\"sum\":" + FormatDouble(histogram.sum) + "}";
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, histogram.name, body);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"stages\": {";
  first = true;
  for (const StageStat& stage : stages) {
    std::string body =
        "{\"count\":" + std::to_string(stage.count) +
        ",\"total_ms\":" + FormatDouble(static_cast<double>(stage.total_us) / 1e3) +
        ",\"min_ms\":" + FormatDouble(static_cast<double>(stage.min_us) / 1e3) +
        ",\"max_ms\":" + FormatDouble(static_cast<double>(stage.max_us) / 1e3) + "}";
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, stage.name, body);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& counter : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-48s %20llu\n", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value));
    out += line;
  }
  for (const auto& gauge : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "%-48s %20lld  (max %lld)\n", gauge.name.c_str(),
                  static_cast<long long>(gauge.value), static_cast<long long>(gauge.max));
    out += line;
  }
  for (const auto& histogram : snapshot.histograms) {
    double mean =
        histogram.count == 0 ? 0.0 : histogram.sum / static_cast<double>(histogram.count);
    std::snprintf(line, sizeof(line), "%-48s count=%llu mean=%s\n", histogram.name.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  FormatDouble(mean).c_str());
    out += line;
  }
  return out;
}

std::string RenderStageTable(const std::vector<StageStat>& stages) {
  std::string out = "stage                                        calls     total ms      "
                    "mean ms       max ms\n";
  char line[160];
  for (const StageStat& stage : stages) {
    double total_ms = static_cast<double>(stage.total_us) / 1e3;
    double mean_ms = stage.count == 0 ? 0.0 : total_ms / static_cast<double>(stage.count);
    std::snprintf(line, sizeof(line), "%-42s %7llu %12.3f %12.3f %12.3f\n", stage.name.c_str(),
                  static_cast<unsigned long long>(stage.count), total_ms, mean_ms,
                  static_cast<double>(stage.max_us) / 1e3);
    out += line;
  }
  return out;
}

namespace {

// "svc.rpc_seconds.Ping" -> "indaas_svc_rpc_seconds_Ping". Prometheus metric
// names admit [a-zA-Z0-9_:]; everything else becomes '_'.
std::string PrometheusFamily(const std::string& name) {
  std::string out = "indaas_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& counter : snapshot.counters) {
    std::string family = PrometheusFamily(counter.name);
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(counter.value) + "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    std::string family = PrometheusFamily(gauge.name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + std::to_string(gauge.value) + "\n";
    out += "# TYPE " + family + "_max gauge\n";
    out += family + "_max " + std::to_string(gauge.max) + "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    std::string family = PrometheusFamily(histogram.name);
    out += "# TYPE " + family + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < histogram.bounds.size(); ++b) {
      cumulative += b < histogram.counts.size() ? histogram.counts[b] : 0;
      out += family + "_bucket{le=\"" + FormatDouble(histogram.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(histogram.count) + "\n";
    out += family + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += family + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"indaas\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(span.start_us);
    out += ",\"dur\":" + std::to_string(span.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(span.tid);
    out += ",\"args\":{";
    out += "\"span_id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    out += ",\"depth\":" + std::to_string(span.depth);
    if (span.trace_id != 0) {
      // Decimal strings: 64-bit ids do not survive JSON's double numbers.
      out += ",\"trace_id\":\"" + std::to_string(span.trace_id) + "\"";
    }
    if (span.remote_parent != 0) {
      out += ",\"remote_parent\":\"" + std::to_string(span.remote_parent) + "\"";
    }
    for (const auto& [key, value] : span.annotations) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace indaas
