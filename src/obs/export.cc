#include "src/obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace indaas {
namespace obs {
namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendKeyValue(std::string& out, const std::string& key, const std::string& raw_value) {
  out += '"';
  out += JsonEscape(key);
  out += "\":";
  out += raw_value;
}

}  // namespace

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans) {
  std::vector<StageStat> stages;
  std::map<std::string, size_t> index;
  for (const SpanRecord& span : spans) {
    auto it = index.find(span.name);
    if (it == index.end()) {
      it = index.emplace(span.name, stages.size()).first;
      stages.push_back(StageStat{span.name, 0, 0, span.dur_us, span.dur_us});
    }
    StageStat& stat = stages[it->second];
    ++stat.count;
    stat.total_us += span.dur_us;
    stat.min_us = std::min(stat.min_us, span.dur_us);
    stat.max_us = std::max(stat.max_us, span.dur_us);
  }
  return stages;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot, const std::vector<StageStat>& stages) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, counter.name, std::to_string(counter.value));
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, gauge.name,
                   "{\"value\":" + std::to_string(gauge.value) +
                       ",\"max\":" + std::to_string(gauge.max) + "}");
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& histogram : snapshot.histograms) {
    std::string body = "{\"bounds\":[";
    for (size_t b = 0; b < histogram.bounds.size(); ++b) {
      if (b != 0) {
        body += ',';
      }
      body += FormatDouble(histogram.bounds[b]);
    }
    body += "],\"counts\":[";
    for (size_t b = 0; b < histogram.counts.size(); ++b) {
      if (b != 0) {
        body += ',';
      }
      body += std::to_string(histogram.counts[b]);
    }
    body += "],\"count\":" + std::to_string(histogram.count) +
            ",\"sum\":" + FormatDouble(histogram.sum) + "}";
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, histogram.name, body);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"stages\": {";
  first = true;
  for (const StageStat& stage : stages) {
    std::string body =
        "{\"count\":" + std::to_string(stage.count) +
        ",\"total_ms\":" + FormatDouble(static_cast<double>(stage.total_us) / 1e3) +
        ",\"min_ms\":" + FormatDouble(static_cast<double>(stage.min_us) / 1e3) +
        ",\"max_ms\":" + FormatDouble(static_cast<double>(stage.max_us) / 1e3) + "}";
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKeyValue(out, stage.name, body);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& counter : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-48s %20llu\n", counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value));
    out += line;
  }
  for (const auto& gauge : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "%-48s %20lld  (max %lld)\n", gauge.name.c_str(),
                  static_cast<long long>(gauge.value), static_cast<long long>(gauge.max));
    out += line;
  }
  for (const auto& histogram : snapshot.histograms) {
    double mean =
        histogram.count == 0 ? 0.0 : histogram.sum / static_cast<double>(histogram.count);
    std::snprintf(line, sizeof(line), "%-48s count=%llu mean=%s\n", histogram.name.c_str(),
                  static_cast<unsigned long long>(histogram.count),
                  FormatDouble(mean).c_str());
    out += line;
  }
  return out;
}

std::string RenderStageTable(const std::vector<StageStat>& stages) {
  std::string out = "stage                                        calls     total ms      "
                    "mean ms       max ms\n";
  char line[160];
  for (const StageStat& stage : stages) {
    double total_ms = static_cast<double>(stage.total_us) / 1e3;
    double mean_ms = stage.count == 0 ? 0.0 : total_ms / static_cast<double>(stage.count);
    std::snprintf(line, sizeof(line), "%-42s %7llu %12.3f %12.3f %12.3f\n", stage.name.c_str(),
                  static_cast<unsigned long long>(stage.count), total_ms, mean_ms,
                  static_cast<double>(stage.max_us) / 1e3);
    out += line;
  }
  return out;
}

namespace {

// "svc.rpc_seconds.Ping" -> "indaas_svc_rpc_seconds_Ping". Prometheus metric
// names admit [a-zA-Z0-9_:]; everything else becomes '_'.
std::string PrometheusFamily(const std::string& name) {
  std::string out = "indaas_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Maps the per-series names of the service's exponential histograms onto a
// shared labeled family: "svc.rpc_seconds.Ping" -> {family, rpc="Ping"},
// "svc.stage.read_seconds" -> {family, stage="read"}. Returns false for
// histograms that stay unlabeled.
bool LabeledHistogramFamily(const std::string& name, std::string* family,
                            std::string* label) {
  constexpr std::string_view kRpcPrefix = "svc.rpc_seconds.";
  constexpr std::string_view kStagePrefix = "svc.stage.";
  constexpr std::string_view kStageSuffix = "_seconds";
  if (name.size() > kRpcPrefix.size() && name.compare(0, kRpcPrefix.size(), kRpcPrefix) == 0) {
    *family = "indaas_svc_rpc_seconds";
    *label = "rpc=\"" + name.substr(kRpcPrefix.size()) + "\"";
    return true;
  }
  if (name.size() > kStagePrefix.size() + kStageSuffix.size() &&
      name.compare(0, kStagePrefix.size(), kStagePrefix) == 0 &&
      name.compare(name.size() - kStageSuffix.size(), kStageSuffix.size(), kStageSuffix) == 0) {
    *family = "indaas_svc_stage_seconds";
    *label = "stage=\"" +
             name.substr(kStagePrefix.size(),
                         name.size() - kStagePrefix.size() - kStageSuffix.size()) +
             "\"";
    return true;
  }
  return false;
}

// One histogram's bucket/sum/count samples. `labels` ("rpc=\"Ping\"") may be
// empty; `le` joins it inside the bucket braces.
void AppendPrometheusHistogram(std::string& out, const std::string& family,
                               const std::string& labels,
                               const Histogram::Snapshot& histogram) {
  const std::string sep = labels.empty() ? "" : ",";
  const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
  uint64_t cumulative = 0;
  for (size_t b = 0; b < histogram.bounds.size(); ++b) {
    cumulative += b < histogram.counts.size() ? histogram.counts[b] : 0;
    out += family + "_bucket{" + labels + sep + "le=\"" + FormatDouble(histogram.bounds[b]) +
           "\"} " + std::to_string(cumulative) + "\n";
  }
  out += family + "_bucket{" + labels + sep + "le=\"+Inf\"} " +
         std::to_string(histogram.count) + "\n";
  out += family + "_sum" + suffix + " " + FormatDouble(histogram.sum) + "\n";
  out += family + "_count" + suffix + " " + std::to_string(histogram.count) + "\n";
}

}  // namespace

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& counter : snapshot.counters) {
    std::string family = PrometheusFamily(counter.name);
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(counter.value) + "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    std::string family = PrometheusFamily(gauge.name);
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + std::to_string(gauge.value) + "\n";
    out += "# TYPE " + family + "_max gauge\n";
    out += family + "_max " + std::to_string(gauge.max) + "\n";
  }
  // Labeled families must appear as one block under one # TYPE line, so the
  // whole family is emitted when its first member is reached and later
  // members are skipped.
  std::vector<bool> emitted(snapshot.histograms.size(), false);
  for (size_t h = 0; h < snapshot.histograms.size(); ++h) {
    if (emitted[h]) continue;
    const auto& histogram = snapshot.histograms[h];
    std::string family;
    std::string label;
    if (!LabeledHistogramFamily(histogram.name, &family, &label)) {
      family = PrometheusFamily(histogram.name);
      out += "# TYPE " + family + " histogram\n";
      AppendPrometheusHistogram(out, family, "", histogram);
      continue;
    }
    out += "# TYPE " + family + " histogram\n";
    for (size_t m = h; m < snapshot.histograms.size(); ++m) {
      if (emitted[m]) continue;
      std::string member_family;
      std::string member_label;
      if (!LabeledHistogramFamily(snapshot.histograms[m].name, &member_family,
                                  &member_label) ||
          member_family != family) {
        continue;
      }
      AppendPrometheusHistogram(out, family, member_label, snapshot.histograms[m]);
      emitted[m] = true;
    }
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"indaas\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(span.start_us);
    out += ",\"dur\":" + std::to_string(span.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(span.tid);
    out += ",\"args\":{";
    out += "\"span_id\":" + std::to_string(span.id);
    out += ",\"parent\":" + std::to_string(span.parent);
    out += ",\"depth\":" + std::to_string(span.depth);
    if (span.trace_id != 0) {
      // Decimal strings: 64-bit ids do not survive JSON's double numbers.
      out += ",\"trace_id\":\"" + std::to_string(span.trace_id) + "\"";
    }
    if (span.remote_parent != 0) {
      out += ",\"remote_parent\":\"" + std::to_string(span.remote_parent) + "\"";
    }
    for (const auto& [key, value] : span.annotations) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

namespace {

std::string HexFrame(uintptr_t pc) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(pc));
  return buf;
}

}  // namespace

std::string ProfileToCollapsed(const ProfileData& data, bool alloc) {
  // Aggregate identical stacks; std::map keeps the output sorted and so
  // byte-stable for equal profiles.
  std::map<std::string, uint64_t> stacks;
  for (const ProfileSample& sample : data.samples) {
    if (sample.alloc != alloc || sample.frames.empty()) continue;
    std::string key;
    // Collapsed format wants root first; samples store leaf first.
    for (size_t i = sample.frames.size(); i-- > 0;) {
      key += HexFrame(sample.frames[i]);
      if (i != 0) key += ';';
    }
    stacks[key] += alloc ? sample.weight : 1;
  }
  std::string out;
  for (const auto& [stack, value] : stacks) {
    out += stack;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string ProfileToChromeTrace(const ProfileData& data) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ProfileSample& sample : data.samples) {
    if (sample.frames.empty()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"" + HexFrame(sample.frames[0]) + "\",\"cat\":\"";
    out += sample.alloc ? "profile_alloc" : "profile_cpu";
    out += "\",\"ph\":\"i\",\"s\":\"t\"";
    out += ",\"ts\":" + std::to_string(sample.t_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(sample.tid);
    out += ",\"args\":{";
    out += "\"weight\":" + std::to_string(sample.weight);
    out += ",\"depth\":" + std::to_string(sample.frames.size());
    if (sample.trace_id != 0) {
      // Decimal strings: 64-bit ids do not survive JSON's double numbers.
      out += ",\"trace_id\":\"" + std::to_string(sample.trace_id) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace indaas
