// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms for the audit pipeline (DESIGN.md §6).
//
// Hot paths pay roughly one relaxed atomic RMW per event: counters and
// histograms are sharded across cache-line-padded atomic slots indexed by a
// per-thread shard id, so concurrent writers on different cores almost never
// touch the same cache line. A scrape (Snapshot) sums the shards; it never
// blocks writers and writers never observe the scraper.
//
// Instruments are registered by dotted name ("sia.cutsets.generated") in the
// global registry and live for the process lifetime: GetCounter et al.
// return stable pointers that callers cache, so the name lookup (one mutex
// acquisition) happens once per call site, not per event. Reset() zeroes
// every instrument in place — cached pointers stay valid — which is how the
// CLI and tests delimit one run's metrics from the next.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace indaas {
namespace obs {

// Number of padded slots each counter/histogram spreads its writers over.
inline constexpr size_t kMetricShards = 16;

// Dense per-thread shard index (stable for the thread's lifetime).
size_t ThreadShardIndex();

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[ThreadShardIndex() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Sum over shards; safe to call while writers are active.
  uint64_t Value() const;
  // Zeroes all shards (used by MetricsRegistry::Reset).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];
};

// Instantaneous signed value (queue depths, worker counts). Tracks the
// maximum value ever set so short-lived peaks survive until the scrape.
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void RaiseMax(int64_t candidate);

  std::string name_;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Fixed-bucket histogram. Bucket i counts values in (bounds[i-1], bounds[i]]
// (bounds[-1] = -inf); one implicit overflow bucket counts values above the
// last bound. Count and sum are tracked alongside the buckets.
class Histogram {
 public:
  void Record(double value);

  // Record() plus exemplar tracking: remembers the trace id of the largest
  // value recorded since the last Reset, so a scrape can point an operator
  // at a concrete worst-case request instead of just a bucket count. The
  // fast path adds one relaxed atomic load; only new maxima take the lock.
  // trace_id 0 (no ambient trace) records without exemplar consideration.
  void RecordWithExemplar(double value, uint64_t trace_id);

  struct Snapshot {
    std::string name;
    std::vector<double> bounds;    // upper bounds, ascending
    std::vector<uint64_t> counts;  // bounds.size() + 1 entries (last = overflow)
    uint64_t count = 0;
    double sum = 0.0;
    double exemplar_value = 0.0;    // largest value with a trace id, 0 = none
    uint64_t exemplar_trace_id = 0;
  };
  Snapshot Scrape() const;
  void Reset();

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];

  // Exemplar state: `exemplar_peek_` mirrors the guarded value so the fast
  // path can reject non-maxima with a single relaxed load.
  std::atomic<double> exemplar_peek_{0.0};
  mutable std::mutex exemplar_mu_;
  double exemplar_value_ = 0.0;
  uint64_t exemplar_trace_id_ = 0;
};

// Everything the registry knows at one scrape, in name order.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
    int64_t max = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<Histogram::Snapshot> histograms;
};

// The process-wide instrument registry. Thread-safe; instruments are created
// on first request and never destroyed.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Returns the instrument registered under `name`, creating it on first
  // use. Pointers are stable for the process lifetime. For histograms the
  // bounds are fixed by the first caller; later callers get the existing
  // instrument regardless of the bounds they pass.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  // Aggregates every instrument. Safe to call while writers are active.
  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument in place; cached instrument pointers stay valid.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_METRICS_H_
