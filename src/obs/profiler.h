// In-process sampling profiler (DESIGN.md §11).
//
// The fourth pillar of the obs stack (metrics, traces, logs — and now
// profiles): answers "which frames burned the CPU during that p99 audit"
// without detaching a debugger from a serving process. Two collectors share
// one machinery:
//
//   CPU samples    — per-thread POSIX timers on the thread's CPU clock
//                    (timer_create + SIGEV_THREAD_ID) deliver SIGPROF at the
//                    configured frequency; the handler unwinds the
//                    interrupted stack by frame pointers (the build compiles
//                    with -fno-omit-frame-pointer) and appends one fixed-size
//                    sample to the thread's lock-free ring.
//   Alloc samples  — the global operator new/delete replacements (defined in
//                    profiler.cc, always compiled, ~2 relaxed loads when
//                    idle) count bytes per thread and capture one stack every
//                    `alloc_interval_bytes`, weighting it by the bytes it
//                    stands for, so heap churn is attributed to the same
//                    frames as CPU time.
//
// Signal-safety rules (everything the SIGPROF handler touches):
//   - no malloc, no stdio, no locks, no C++ exceptions;
//   - per-thread state reached through one thread_local pointer that the
//     thread itself published at registration (local-exec TLS, no lazy init
//     in signal context);
//   - samples land in per-thread seqlock rings cloned from the flight
//     recorder (src/obs/flight_recorder.h): relaxed word stores, one release
//     store to `head`, readers drop slots the writer lapped mid-copy;
//   - frame-pointer walks validate every dereference against the thread's
//     stack bounds captured at registration, so a corrupt or foreign frame
//     chain terminates the walk instead of faulting.
//
// Threads are sampled only after calling Profiler::RegisterCurrentThread()
// (server pool workers, reactor loops, and `indaas serve`'s main thread all
// do); unregistered threads cost nothing and are simply invisible, which
// keeps every signal-context invariant local to code that opted in.
//
// A drainer thread moves ring contents into the session buffer every few
// milliseconds and folds drop/truncation counts into the metrics registry
// (obs.profile.samples / dropped / truncated_stacks) — never from signal
// context. One session runs at a time: Start/Stop for explicit windows
// (the GetProfile RPC), or a continuous background session
// (`indaas serve --profile-hz`) from which WindowedCapture() cuts
// time-bounded slices for remote callers.

#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/util/status.h"

namespace indaas {
namespace obs {

// One decoded stack sample. `frames` is leaf-first (frames[0] is the
// interrupted PC / the allocation site's caller chain head).
struct ProfileSample {
  uint64_t t_us = 0;       // trace-epoch microseconds (obs::TraceNowMicros)
  uint64_t trace_id = 0;   // ambient distributed trace id, 0 = none
  uint64_t weight = 0;     // CPU: 1; alloc: bytes this sample stands for
  uint32_t tid = 0;        // obs::TraceThreadId of the sampled thread
  bool truncated = false;  // stack was deeper than kMaxFrames
  bool alloc = false;      // allocation sample (weight = bytes)
  std::vector<uintptr_t> frames;
};

// Everything one profile window produced. `exe_base` is the executable's
// runtime relocation base (PIE): symbolizers feed `pc - exe_base` to
// addr2line. `trace_ids` lists the distinct distributed trace ids whose
// requests were caught in the window (bounded, see kMaxWindowTraceIds) —
// the hook `indaas trace-merge` uses to align a flamegraph with the RPC
// timeline that produced it.
struct ProfileData {
  uint32_t hz = 0;
  uint64_t start_us = 0;  // trace-epoch micros, same timebase as spans
  uint64_t end_us = 0;
  uintptr_t exe_base = 0;
  std::string exe_path;
  uint64_t dropped = 0;           // samples lost to ring overwrite/buffer cap
  uint64_t truncated_stacks = 0;  // samples whose walk hit kMaxFrames
  std::vector<uint64_t> trace_ids;
  std::vector<ProfileSample> samples;  // CPU and alloc, interleaved by time
};

struct ProfileOptions {
  uint32_t hz = 99;                  // CPU sampling frequency, [1, kMaxHz]
  bool alloc = true;                 // sample allocations too
  uint64_t alloc_interval_bytes = 512 * 1024;  // one stack per N bytes
  // Continuous (server-lifetime) session: the buffer keeps a sliding window
  // of the last kMaxWindowSeconds instead of accumulating until the session
  // cap — aged-out samples are evicted (not counted as dropped) so an
  // always-on session neither saturates nor pins unbounded memory.
  bool continuous = false;
};

class Profiler {
 public:
  // Deepest stack a sample retains; deeper walks set `truncated`.
  static constexpr size_t kMaxFrames = 48;
  // Samples buffered per thread ring between drainer sweeps. The drainer
  // runs every ~20 ms, so even 1 kHz sampling fills <5% of a ring per sweep.
  static constexpr size_t kRingCapacity = 512;
  // Upper bound on concurrently-registered threads (flight-recorder
  // pattern: fixed array walkable without locks, rings of exited threads
  // are parked and re-used).
  static constexpr size_t kMaxThreads = 128;
  // Hard cap on the sampling frequency a session (or RPC) may request.
  static constexpr uint32_t kMaxHz = 1000;
  // Longest window WindowedCapture() serves; also the retention horizon of
  // a continuous session's sliding buffer (plus slack for drainer latency).
  static constexpr uint32_t kMaxWindowSeconds = 60;
  // Session buffer cap. Explicit sessions drop further samples once full;
  // continuous sessions evict the oldest instead, so the newest
  // kMaxWindowSeconds always stay servable. At 99 Hz × 16 threads this is
  // ~10 minutes of profile.
  static constexpr size_t kMaxSessionSamples = 1 << 20;
  // Distinct trace ids remembered per window.
  static constexpr size_t kMaxWindowTraceIds = 64;

  static Profiler& Global();

  // Enrolls the calling thread for sampling: acquires its rings, captures
  // its stack bounds, and — when a session is running — arms its CPU timer.
  // Idempotent; cheap after the first call. Threads that never call this
  // are never signalled.
  void RegisterCurrentThread();

  // Starts a profiling session. Fails with kUnavailable when one is already
  // running and kInvalidArgument for out-of-range options.
  Status Start(const ProfileOptions& options);

  // Stops the session and returns everything it captured. Returns empty
  // data when no session was running.
  ProfileData Stop();

  // Blocks for `seconds`, then returns that window's samples. When a
  // session is already running (continuous mode), the window is cut from
  // it without disturbing it; otherwise a temporary session is started and
  // stopped around the window. Fails when `seconds` or `hz` is out of
  // range, or a temporary session loses the start race.
  Result<ProfileData> WindowedCapture(uint32_t hz, uint32_t seconds, bool alloc);

  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- internal (signal handler / allocation hook) ---
  struct ThreadState;
  struct Ring;
  // Called by the global operator new replacement on every allocation.
  static void OnAlloc(size_t size);

 private:
  Profiler();

  void ArmTimerLocked(ThreadState* state);
  void DisarmTimerLocked(ThreadState* state);
  void DrainLoop();
  // Moves every ring's unread samples into buffer_; returns samples moved.
  // Continuous sessions also evict buffered samples older than the
  // retention horizon here (eviction is not a drop).
  size_t DrainOnce();
  void AppendLocked(const ProfileSample& sample);

  std::atomic<bool> running_{false};
  std::atomic<bool> alloc_sampling_{false};

  std::mutex mu_;  // guards everything below (never taken in signal context)
  bool stopping_ = false;  // Stop() tear-down in progress; Start() must wait
  ProfileOptions options_;
  uint64_t session_start_us_ = 0;
  std::deque<ProfileSample> buffer_;  // deque: continuous mode evicts at the front
  std::vector<uint64_t> buffer_trace_ids_;
  uint64_t dropped_ = 0;
  uint64_t truncated_ = 0;
  std::thread drainer_;
  std::atomic<bool> drainer_stop_{false};

  std::array<std::atomic<ThreadState*>, kMaxThreads> threads_{};
  std::atomic<size_t> thread_count_{0};
};

// The executable's runtime relocation base and path (for PIE-aware offline
// symbolization). Cheap after the first call.
uintptr_t ExecutableLoadBase();
const std::string& ExecutablePath();

// --- Dump format ------------------------------------------------------------
//
// Self-describing line-oriented text (the GetProfile RPC payload and the
// input to tools/symbolize_profile.py):
//
//   # indaas-profile v1
//   # exe /path/to/binary
//   # base 0x55f2c3a00000
//   # hz 99
//   # window_us <start> <end>
//   # counts samples <n> dropped <n> truncated <n>
//   # trace_ids <hex> <hex> ...
//   cpu <t_us> <trace_id> <tid> <weight> <pc-hex> <pc-hex> ...
//   alloc <t_us> <trace_id> <tid> <bytes> <pc-hex> <pc-hex> ...
//
// PCs are leaf-first runtime addresses; subtract `base` before addr2line.

std::string ProfileToDumpText(const ProfileData& data);

// Parses ProfileToDumpText output. Unparseable lines are skipped; header
// fields missing from `text` leave the corresponding fields zero. Returns
// false when `text` lacks the v1 header line.
bool ParseProfileDumpText(const std::string& text, ProfileData* out);

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_PROFILER_H_
