// Structured, leveled logging (DESIGN.md §6).
//
// A log record is an *event* — a dotted name plus typed key=value fields —
// not a formatted sentence, so sinks can render the same record as aligned
// key=value text for a terminal or NDJSON for a collector, and tooling can
// filter on fields instead of regexing prose. Records carry the recording
// thread, the ambient distributed trace id (src/obs/propagate.h) and the
// call site, which is what lets an operator jump from a "slow_reader_drop"
// log line to the matching flight-recorder events and trace spans.
//
// Emission is gated twice: a relaxed atomic severity check before any
// argument is evaluated (the INDAAS_SLOG macro short-circuits), and an
// optional per-site rate limit (INDAAS_SLOG_EVERY) that admits at most
// `per_sec` records per second per call site, counting what it suppressed —
// the next admitted record carries the suppressed count, so bursts are
// summarized instead of silently eaten. Hot paths can therefore log their
// failure modes (shed, slow-reader drop, read deadline) without a storm of
// identical lines taking the service down a second time.
//
// The sink is process-global and swappable: TextLogSink (key=value lines,
// default, stderr), JsonLogSink (one JSON object per line) and
// CaptureLogSink (in-memory, for tests). Sink writes are serialized by the
// logger, so sinks need no locking of their own.
//
// Usage:
//   INDAAS_SLOG(Warn, "svc.slow_reader_drop")
//       .Kv("conn", conn_id).Kv("unsent_bytes", pending);
//   INDAAS_SLOG_EVERY(Error, "net.accept_failed", 1.0)
//       .Kv("error", status.ToString());

#ifndef SRC_OBS_LOG_H_
#define SRC_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace indaas {
namespace obs {

enum class LogSeverity : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Lower-case severity tag ("debug" ... "error").
const char* LogSeverityName(LogSeverity severity);

// One typed key=value field. `is_number` is true for integers, doubles and
// booleans, so the JSON sink can emit them unquoted.
struct LogField {
  std::string key;
  std::string value;
  bool is_number = false;
};

// One structured log record, as handed to sinks.
struct LogRecord {
  LogSeverity severity = LogSeverity::kInfo;
  uint64_t t_us = 0;       // microseconds since the process trace epoch
  uint64_t wall_us = 0;    // microseconds since the unix epoch (wall clock)
  uint32_t tid = 0;        // dense thread index (obs::TraceThreadId)
  uint64_t trace_id = 0;   // ambient distributed trace id, 0 = none
  const char* file = "";   // call site (static storage; never freed)
  int line = 0;
  std::string event;       // dotted event name ("svc.slow_reader_drop")
  std::vector<LogField> fields;
  uint64_t suppressed = 0;  // rate-limited records dropped before this one
};

// Where records go. Write() is called under the logger's lock — sinks are
// never entered concurrently and need no locking of their own.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

// key=value lines:
//   W 2026-08-08T06:00:01.123456Z svc.slow_reader_drop conn=7 bytes=131072
//       trace=18446744073709551615 suppressed=12 (server.cc:503)
class TextLogSink : public LogSink {
 public:
  explicit TextLogSink(std::FILE* out = stderr) : out_(out) {}
  void Write(const LogRecord& record) override;

 private:
  std::FILE* out_;
};

// One JSON object per line (NDJSON), numeric fields unquoted, u64 ids as
// decimal strings (they do not survive JSON doubles):
//   {"sev":"warn","t_us":123,"wall_us":...,"event":"...","tid":2,
//    "trace_id":"...","src":"server.cc:503","suppressed":0,"kv":{...}}
class JsonLogSink : public LogSink {
 public:
  explicit JsonLogSink(std::FILE* out = stderr) : out_(out) {}
  void Write(const LogRecord& record) override;

  // Renders one record to its NDJSON line (no trailing newline); exposed so
  // tests can golden-check the format without capturing a FILE*.
  static std::string Render(const LogRecord& record);

 private:
  std::FILE* out_;
};

// Buffers records in memory for tests.
class CaptureLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;
  std::vector<LogRecord> Take();

 private:
  std::mutex mu_;
  std::vector<LogRecord> records_;
};

// The process-wide logger: severity gate + the active sink.
class Logger {
 public:
  static Logger& Global();

  void SetMinSeverity(LogSeverity severity) {
    min_severity_.store(static_cast<int>(severity), std::memory_order_relaxed);
  }
  LogSeverity min_severity() const {
    return static_cast<LogSeverity>(min_severity_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogSeverity severity) const {
    return static_cast<int>(severity) >= min_severity_.load(std::memory_order_relaxed);
  }

  // Swaps the sink (nullptr restores the default stderr text sink). The old
  // sink is released once no in-flight Log() holds it.
  void SetSink(std::shared_ptr<LogSink> sink);

  // Emits one record (severity re-checked; sink write serialized).
  void Log(LogRecord record);

 private:
  Logger();

  std::atomic<int> min_severity_{static_cast<int>(LogSeverity::kInfo)};
  std::mutex mu_;  // guards sink_ swaps and serializes Write()
  std::shared_ptr<LogSink> sink_;
};

// Per-call-site rate limiter (fixed one-second windows, admits up to
// ceil(per_sec) records per window; everything else increments a suppressed
// counter the next admitted record picks up). All-atomic: a racing thread
// may occasionally be admitted into a window that just rolled over, which
// trades exactness for zero locks on the deny path.
class LogSite {
 public:
  constexpr LogSite() = default;

  // True when this emission is admitted under `per_sec`.
  bool Admit(double per_sec) { return Admit(per_sec, NowMicros()); }
  // Deterministic variant for tests.
  bool Admit(double per_sec, uint64_t now_us);

  // Returns the suppressed-since-last-emit count and resets it.
  uint64_t TakeSuppressed() { return suppressed_.exchange(0, std::memory_order_relaxed); }

 private:
  static uint64_t NowMicros();

  std::atomic<uint64_t> window_start_us_{0};
  std::atomic<uint64_t> admitted_in_window_{0};
  std::atomic<uint64_t> suppressed_{0};
};

// Builds one record field by field and emits it on destruction. Created
// only by the INDAAS_SLOG* macros once the severity gate passed.
class LogEventBuilder {
 public:
  LogEventBuilder(LogSeverity severity, const char* file, int line, const char* event,
                  uint64_t suppressed);
  ~LogEventBuilder();

  LogEventBuilder(const LogEventBuilder&) = delete;
  LogEventBuilder& operator=(const LogEventBuilder&) = delete;

  LogEventBuilder& Kv(const char* key, std::string_view value);
  LogEventBuilder& Kv(const char* key, const char* value) {
    return Kv(key, std::string_view(value));
  }
  LogEventBuilder& Kv(const char* key, const std::string& value) {
    return Kv(key, std::string_view(value));
  }
  LogEventBuilder& Kv(const char* key, bool value);
  LogEventBuilder& Kv(const char* key, double value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  LogEventBuilder& Kv(const char* key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return KvInt(key, static_cast<int64_t>(value));
    } else {
      return KvUint(key, static_cast<uint64_t>(value));
    }
  }

 private:
  LogEventBuilder& KvInt(const char* key, int64_t value);
  LogEventBuilder& KvUint(const char* key, uint64_t value);

  LogRecord record_;
};

}  // namespace obs
}  // namespace indaas

#ifndef INDAAS_OBS_CONCAT
#define INDAAS_OBS_CONCAT_(a, b) a##b
#define INDAAS_OBS_CONCAT(a, b) INDAAS_OBS_CONCAT_(a, b)
#endif

// Structured log statement: INDAAS_SLOG(Warn, "svc.x").Kv("k", v)...;
// Severity is checked before any Kv argument is evaluated.
#define INDAAS_SLOG(severity, event)                                                   \
  if (!::indaas::obs::Logger::Global().Enabled(::indaas::obs::LogSeverity::k##severity)) { \
  } else                                                                               \
    ::indaas::obs::LogEventBuilder(::indaas::obs::LogSeverity::k##severity, __FILE__,  \
                                   __LINE__, event, 0)

// Rate-limited variant: admits at most `per_sec` records per second from
// this call site; the next admitted record carries the suppressed count.
#define INDAAS_SLOG_EVERY(severity, event, per_sec)                                    \
  if (!::indaas::obs::Logger::Global().Enabled(::indaas::obs::LogSeverity::k##severity)) { \
  } else if (static ::indaas::obs::LogSite INDAAS_OBS_CONCAT(indaas_slog_site_, __LINE__); \
             !INDAAS_OBS_CONCAT(indaas_slog_site_, __LINE__).Admit(per_sec)) {         \
  } else                                                                               \
    ::indaas::obs::LogEventBuilder(                                                    \
        ::indaas::obs::LogSeverity::k##severity, __FILE__, __LINE__, event,            \
        INDAAS_OBS_CONCAT(indaas_slog_site_, __LINE__).TakeSuppressed())

#endif  // SRC_OBS_LOG_H_
