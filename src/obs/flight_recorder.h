// Always-on flight recorder + tail sampler (DESIGN.md §6).
//
// The flight recorder answers "what was the service doing just before X?"
// for an X that already happened — a crash, a shed storm, a stalled
// connection. Each thread owns a fixed-size ring of 40-byte structured
// events (accept, shed, slow-reader drop, read deadline, RPC begin/end,
// loop lag...) written with a handful of relaxed atomic stores; recording
// an event never takes a lock, never allocates, and never blocks, which is
// what makes it safe to leave on in production and cheap enough to sit on
// the reactor's hot path (the ≤3% bench_svc_rpc budget in EXPERIMENTS.md).
//
// Concurrency model: each ring slot is five std::atomic<uint64_t> words.
// A writer bumps a reservation counter (relaxed fetch_add picks a slot),
// stores the words relaxed, then publishes via a release store to the
// ring's `head`. Readers (Snapshot, DumpToFd) acquire `head`, copy slots,
// and drop any slot whose sequence shows it was overwritten mid-copy —
// a dump taken during a write storm loses a few events at the overwrite
// frontier, never sees torn memory flagged by TSan. Rings are registered
// in a fixed array of atomic pointers so a signal handler can walk every
// thread's ring without taking the registry lock; rings of exited threads
// park on a free list and are re-used by new threads.
//
// Dumps: DumpText() for tooling/RPCs, DumpToFd() for signal context
// (write(2) + a local integer formatter, no allocation, no stdio), and
// InstallFlightRecorderSignalHandlers() wires SIGUSR2 (dump and continue)
// plus the fatal signals (dump, restore default, re-raise). ParseDumpText
// round-trips a dump back into events for `indaas debug` and tests.
//
// The TailSampler is the "keep the interesting ones" layer on top: the
// server offers it every finished RPC with its per-stage timing breakdown,
// and it retains — keyed by trace id, in a small bounded ring — only RPCs
// that were slow, shed, or errored. Fast successes are dropped at the door,
// so a post-incident `indaas debug` shows full detail for exactly the
// requests an operator would ask about.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace indaas {
namespace obs {

// What happened. Values are stable wire/dump identifiers — append only.
enum class FlightEventType : uint16_t {
  kNone = 0,
  kAccept = 1,          // a/b: conn id / shard
  kConnClose = 2,       // a/b: conn id / bytes still unsent
  kShed = 3,            // a/b: request id / conn id
  kSlowReaderDrop = 4,  // a/b: conn id / buffered bytes
  kReadDeadline = 5,    // a/b: conn id / deadline ms
  kRpcBegin = 6,        // a/b: request id / conn id, code: msg type
  kRpcEnd = 7,          // a/b: request id / total us, code: msg type
  kLoopLag = 8,         // a/b: lag us / timer heap depth
  kDump = 9,            // a/b: unused; marks an explicit dump point
};

// Dump/debug tag for an event type ("accept", "shed", ...).
const char* FlightEventTypeName(FlightEventType type);

// One fixed-size recorder event. `a`/`b`/`code` are type-dependent (see the
// enum); `trace_id` is the ambient distributed trace id or 0.
struct FlightEvent {
  uint64_t t_us = 0;      // microseconds since the process trace epoch
  uint64_t trace_id = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t tid = 0;       // recording thread (obs::TraceThreadId)
  FlightEventType type = FlightEventType::kNone;
  uint16_t code = 0;
};

class FlightRecorder {
 public:
  // Events retained per thread. Two events per RPC means each thread keeps
  // roughly the last 500 requests it touched.
  static constexpr size_t kRingCapacity = 1024;
  // Upper bound on concurrently-registered rings (≈ peak live threads;
  // rings of exited threads are re-used). Fixed so signal handlers can walk
  // the registry without locking.
  static constexpr size_t kMaxRings = 256;

  static FlightRecorder& Global();

  // Records one event into the calling thread's ring. Lock-free,
  // allocation-free after the thread's first call. No-op while disabled or
  // once kMaxRings threads hold rings.
  void Record(FlightEventType type, uint64_t a, uint64_t b, uint16_t code,
              uint64_t trace_id);

  // Bench A/B switch; the recorder is on by default ("always-on").
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Copies every ring's surviving events, oldest first per ring, sorted by
  // timestamp across rings. Safe concurrent with writers.
  std::vector<FlightEvent> Snapshot() const;

  // Snapshot rendered as the line-oriented dump format (see ParseDumpText).
  std::string DumpText() const;

  // Async-signal-safe dump: write(2) only, no allocation, no stdio, no
  // locks. Same format as DumpText.
  void DumpToFd(int fd) const;

  // Parses DumpText/DumpToFd output; unparseable lines are skipped.
  // Returns the number of events appended to `out`.
  static size_t ParseDumpText(std::string_view text, std::vector<FlightEvent>* out);

 private:
  friend class FlightRecorderTestPeer;

  struct Slot {
    std::atomic<uint64_t> t_us{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    // tid (high 32) | type (16) | code (16); 0 = never written.
    std::atomic<uint64_t> meta{0};
  };

  struct Ring {
    std::array<Slot, kRingCapacity> slots;
    // Next sequence number to write; slot index = seq % kRingCapacity.
    // Published with release so readers who acquire it see the slot words.
    std::atomic<uint64_t> head{0};
    // Claimed by a live thread. Cleared (release) at thread exit so a later
    // thread can adopt the ring instead of leaking one per thread ever made.
    std::atomic<bool> in_use{false};
  };

  // Releases a ring at thread exit (thread_local holder destructor).
  struct ThreadRingHolder {
    Ring* ring = nullptr;
    ~ThreadRingHolder();
  };

  FlightRecorder() = default;
  Ring* ThreadRing();
  Ring* AcquireRing();
  static void CopyRing(const Ring& ring, std::vector<FlightEvent>* out);

  std::atomic<bool> enabled_{true};
  std::array<std::atomic<Ring*>, kMaxRings> rings_{};
  std::atomic<size_t> ring_count_{0};
};

// Installs a SIGUSR2 handler that dumps the recorder, and fatal-signal
// handlers (SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL) that dump and then
// re-raise with the default disposition. `path` receives the dump
// (O_APPEND, created 0644); empty means stderr. The path is copied into a
// static buffer — calling again replaces it.
void InstallFlightRecorderSignalHandlers(const std::string& path);

// --- Tail sampler -----------------------------------------------------------

// Pipeline stages of one RPC through the server (DESIGN.md §6). kQueue is
// dispatch→worker-pickup; the rest are active processing phases.
enum class RpcStage : int {
  kRead = 0,     // first buffered byte → complete frame parsed
  kDecode = 1,   // payload bytes → request struct
  kQueue = 2,    // admitted → worker thread picks it up
  kCompute = 3,  // handler body (audit, import, ...)
  kEncode = 4,   // reply struct → payload bytes
  kWrite = 5,    // reply enqueued → last byte flushed to the socket
};
constexpr int kRpcStageCount = 6;

const char* RpcStageName(RpcStage stage);

// Per-stage elapsed seconds for one RPC, indexed by RpcStage.
struct RpcStageSeconds {
  double s[kRpcStageCount] = {};

  void Add(RpcStage stage, double seconds) { s[static_cast<int>(stage)] += seconds; }
  double total() const {
    double sum = 0;
    for (double v : s) sum += v;
    return sum;
  }
};

// Why an RPC was worth keeping.
enum class TailOutcome : uint8_t { kSlow = 0, kError = 1, kShed = 2 };

const char* TailOutcomeName(TailOutcome outcome);

// Full detail for one retained RPC.
struct TailSample {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint16_t rpc_type = 0;       // svc::MsgType of the request
  TailOutcome outcome = TailOutcome::kSlow;
  bool ok = false;             // true when the RPC succeeded (slow-but-ok)
  uint64_t conn_id = 0;
  uint64_t end_us = 0;         // completion time, trace epoch micros
  double total_s = 0;          // wall time start→reply flushed
  RpcStageSeconds stages;
};

// Bounded keep-the-interesting-ones buffer. Offer() is called once per
// finished RPC; only slow/shed/errored samples pay the mutex.
class TailSampler {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  static TailSampler& Global();

  // Reconfigures and clears. `slow_threshold_s` <= 0 disables the
  // slowness criterion (errors and sheds are still kept).
  void Configure(double slow_threshold_s, size_t capacity = kDefaultCapacity);
  double slow_threshold_s() const {
    return slow_threshold_s_.load(std::memory_order_relaxed);
  }

  // Retains the sample iff it is an error, a shed, or slower than the
  // threshold. Returns true when retained.
  bool Offer(const TailSample& sample);

  // Retained samples, oldest first.
  std::vector<TailSample> Snapshot() const;
  // The k slowest retained samples, slowest first.
  std::vector<TailSample> TopSlowest(size_t k) const;

  void Reset();

 private:
  TailSampler() = default;

  std::atomic<double> slow_threshold_s_{0.100};
  mutable std::mutex mu_;
  size_t capacity_ = kDefaultCapacity;
  size_t next_ = 0;      // ring write index
  bool wrapped_ = false;
  std::vector<TailSample> samples_;
};

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
