// Exporters for the metrics registry and span recorder (DESIGN.md §6):
// human-readable text, structured JSON, Prometheus text exposition, and the
// Chrome trace-event format that chrome://tracing and Perfetto load
// directly.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace indaas {
namespace obs {

// Per-stage aggregate over all spans sharing a name.
struct StageStat {
  std::string name;
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
};

// Groups spans by name, ordered by first occurrence (== pipeline order).
std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans);

// Structured JSON dump of every instrument, plus a "stages" section when
// span aggregates are supplied:
//   {"counters":{...},"gauges":{...},"histograms":{...},"stages":{...}}
std::string MetricsToJson(const MetricsSnapshot& snapshot,
                          const std::vector<StageStat>& stages = {});

// Aligned plain-text rendering of a snapshot (for stderr / logs).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

// Stage-timing table printed after `indaas audit` runs.
std::string RenderStageTable(const std::vector<StageStat>& stages);

// Prometheus text exposition (version 0.0.4) of a snapshot. Dotted
// instrument names become underscore families under an `indaas_` prefix
// ("svc.rpc_seconds.Ping" -> "indaas_svc_rpc_seconds_Ping"); counters and
// gauges map to their Prometheus types (a gauge's tracked max becomes a
// separate `<family>_max` gauge), and histograms emit cumulative
// `_bucket{le="..."}` samples plus `_sum`/`_count`. Exactly one `# TYPE`
// line per family, no duplicate sample names.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

// Chrome trace-event JSON: one complete ("ph":"X") event per span with
// microsecond timestamps; annotations become event args. Spans that carry a
// distributed identity add `trace_id` / `remote_parent` args, rendered as
// decimal strings because u64 ids do not survive JSON's double numbers.
// Loadable in chrome://tracing and Perfetto.
std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& raw);

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_EXPORT_H_
