// Exporters for the metrics registry and span recorder (DESIGN.md §6):
// human-readable text, structured JSON, Prometheus text exposition, and the
// Chrome trace-event format that chrome://tracing and Perfetto load
// directly.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"

namespace indaas {
namespace obs {

// Per-stage aggregate over all spans sharing a name.
struct StageStat {
  std::string name;
  uint64_t count = 0;
  uint64_t total_us = 0;
  uint64_t min_us = 0;
  uint64_t max_us = 0;
};

// Groups spans by name, ordered by first occurrence (== pipeline order).
std::vector<StageStat> AggregateStages(const std::vector<SpanRecord>& spans);

// Structured JSON dump of every instrument, plus a "stages" section when
// span aggregates are supplied:
//   {"counters":{...},"gauges":{...},"histograms":{...},"stages":{...}}
std::string MetricsToJson(const MetricsSnapshot& snapshot,
                          const std::vector<StageStat>& stages = {});

// Aligned plain-text rendering of a snapshot (for stderr / logs).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

// Stage-timing table printed after `indaas audit` runs.
std::string RenderStageTable(const std::vector<StageStat>& stages);

// Prometheus text exposition (version 0.0.4) of a snapshot. Dotted
// instrument names become underscore families under an `indaas_` prefix;
// counters and gauges map to their Prometheus types (a gauge's tracked max
// becomes a separate `<family>_max` gauge), and histograms emit cumulative
// `_bucket{le="..."}` samples plus `_sum`/`_count`. Exactly one `# TYPE`
// line per family, no duplicate sample names.
//
// The per-RPC and per-stage exponential histograms fold into two native
// labeled families instead of one family per series, so PromQL can
// aggregate across RPCs ("svc.rpc_seconds.Ping" becomes
// `indaas_svc_rpc_seconds_bucket{rpc="Ping",le="..."}`, and
// "svc.stage.read_seconds" becomes
// `indaas_svc_stage_seconds_bucket{stage="read",le="..."}`). Each labeled
// family appears at its first member's position with a single `# TYPE`
// line covering every label value.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

// Chrome trace-event JSON: one complete ("ph":"X") event per span with
// microsecond timestamps; annotations become event args. Spans that carry a
// distributed identity add `trace_id` / `remote_parent` args, rendered as
// decimal strings because u64 ids do not survive JSON's double numbers.
// Loadable in chrome://tracing and Perfetto.
std::string SpansToChromeTrace(const std::vector<SpanRecord>& spans);

// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& raw);

// Collapsed-stack ("folded") rendering of a profile window, one line per
// distinct stack: `frame;frame;...;leaf value` with frames root-first —
// exactly what flamegraph.pl and speedscope ingest. Frames are hex runtime
// addresses until tools/symbolize_profile.py rewrites them to symbols.
// `alloc` selects the allocation samples (value = sampled bytes) instead of
// the CPU samples (value = sample count). Lines are sorted, so equal
// profiles render byte-identically.
std::string ProfileToCollapsed(const ProfileData& data, bool alloc);

// Chrome trace-event JSON of a profile window: one thread-scoped instant
// event per sample, named by its leaf frame, timestamped in trace-epoch
// microseconds — the same timebase as SpansToChromeTrace, so
// `indaas trace-merge` aligns a profile with the RPC spans that produced
// it. Samples carrying a distributed trace id add a decimal-string
// `trace_id` arg, matching the span convention.
std::string ProfileToChromeTrace(const ProfileData& data);

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_EXPORT_H_
