#include "src/obs/metrics.h"

#include <algorithm>

namespace indaas {
namespace obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Set(int64_t value) {
  value_.store(value, std::memory_order_relaxed);
  RaiseMax(value);
}

void Gauge::Add(int64_t delta) {
  int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  RaiseMax(now);
}

void Gauge::RaiseMax(int64_t candidate) {
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (Shard& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Record(double value) {
  // First bound >= value; values above every bound land in the overflow slot.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Shard& shard = shards_[ThreadShardIndex() % kMetricShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
}

void Histogram::RecordWithExemplar(double value, uint64_t trace_id) {
  Record(value);
  if (trace_id == 0) return;
  if (value < exemplar_peek_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (value >= exemplar_value_) {
    exemplar_value_ = value;
    exemplar_trace_id_ = trace_id;
    exemplar_peek_.store(value, std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::Scrape() const {
  Snapshot snap;
  snap.name = name_;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    snap.exemplar_value = exemplar_value_;
    snap.exemplar_trace_id = exemplar_trace_id_;
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplar_value_ = 0.0;
  exemplar_trace_id_ = 0;
  exemplar_peek_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name))).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->Value(), gauge->Max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Scrape());
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

}  // namespace obs
}  // namespace indaas
