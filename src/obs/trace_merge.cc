#include "src/obs/trace_merge.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "src/obs/export.h"
#include "src/util/strings.h"

namespace indaas {
namespace obs {
namespace {

// --- Minimal JSON parser ---
//
// Just enough JSON to read Chrome trace files back in: the full value
// grammar, doubles for numbers, no \uXXXX surrogate pairs (the exporter
// never emits code points above the escape set). Kept private to this
// translation unit; nothing else in the repo consumes JSON.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view src) : src_(src) {}

  Result<JsonValue> Parse() {
    INDAAS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWs();
    if (pos_ != src_.size()) {
      return ParseError(StrFormat("trailing bytes at offset %zu", pos_));
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t' ||
                                  src_[pos_] == '\n' || src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Result<char> Peek() {
    SkipWs();
    if (pos_ >= src_.size()) {
      return ParseError("unexpected end of JSON");
    }
    return src_[pos_];
  }

  Status Expect(char c) {
    INDAAS_ASSIGN_OR_RETURN(char got, Peek());
    if (got != c) {
      return ParseError(StrFormat("expected '%c' at offset %zu, got '%c'", c, pos_, got));
    }
    ++pos_;
    return Status::Ok();
  }

  Status ExpectWord(std::string_view word) {
    if (src_.substr(pos_, word.size()) != word) {
      return ParseError(StrFormat("bad literal at offset %zu", pos_));
    }
    pos_ += word.size();
    return Status::Ok();
  }

  Result<JsonValue> ParseValue() {
    INDAAS_ASSIGN_OR_RETURN(char c, Peek());
    JsonValue value;
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        INDAAS_ASSIGN_OR_RETURN(value.text, ParseString());
        value.kind = JsonValue::Kind::kString;
        return value;
      }
      case 't':
        INDAAS_RETURN_IF_ERROR(ExpectWord("true"));
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        INDAAS_RETURN_IF_ERROR(ExpectWord("false"));
        value.kind = JsonValue::Kind::kBool;
        return value;
      case 'n':
        INDAAS_RETURN_IF_ERROR(ExpectWord("null"));
        return value;
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    INDAAS_RETURN_IF_ERROR(Expect('{'));
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    INDAAS_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      INDAAS_ASSIGN_OR_RETURN(std::string key, ParseString());
      INDAAS_RETURN_IF_ERROR(Expect(':'));
      INDAAS_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.fields.emplace_back(std::move(key), std::move(member));
      INDAAS_ASSIGN_OR_RETURN(char next, Peek());
      if (next == ',') {
        ++pos_;
        continue;
      }
      INDAAS_RETURN_IF_ERROR(Expect('}'));
      return value;
    }
  }

  Result<JsonValue> ParseArray() {
    INDAAS_RETURN_IF_ERROR(Expect('['));
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    INDAAS_ASSIGN_OR_RETURN(char c, Peek());
    if (c == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      INDAAS_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      value.items.push_back(std::move(item));
      INDAAS_ASSIGN_OR_RETURN(char next, Peek());
      if (next == ',') {
        ++pos_;
        continue;
      }
      INDAAS_RETURN_IF_ERROR(Expect(']'));
      return value;
    }
  }

  Result<std::string> ParseString() {
    INDAAS_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < src_.size()) {
      char c = src_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= src_.size()) {
        break;
      }
      char escape = src_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > src_.size()) {
            return ParseError("truncated \\u escape");
          }
          unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(src_.substr(pos_, 4)).c_str(), nullptr, 16));
          pos_ += 4;
          // The exporter only emits \u00XX control escapes; anything wider
          // is replaced rather than decoded into UTF-8.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return ParseError(StrFormat("bad escape '\\%c'", escape));
      }
    }
    return ParseError("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (src_[pos_] == '-' || src_[pos_] == '+' || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E' ||
            (src_[pos_] >= '0' && src_[pos_] <= '9'))) {
      ++pos_;
    }
    if (pos_ == start) {
      return ParseError(StrFormat("expected a JSON value at offset %zu", start));
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::strtod(std::string(src_.substr(start, pos_ - start)).c_str(), nullptr);
    return value;
  }

  std::string_view src_;
  size_t pos_ = 0;
};

// --- Trace file -> MergeEvents ---

uint64_t ParseU64Text(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 10);
}

// Renders a parsed arg value back to flat text for the merged output.
std::string ArgText(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kString:
      return value.text;
    case JsonValue::Kind::kNumber: {
      if (value.number == static_cast<double>(static_cast<int64_t>(value.number))) {
        return std::to_string(static_cast<int64_t>(value.number));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value.number);
      return buf;
    }
    case JsonValue::Kind::kBool:
      return value.boolean ? "true" : "false";
    default:
      return "";
  }
}

// Reads a u64 id arg that the exporter writes as a decimal string (older
// files may carry a plain number).
uint64_t IdArg(const JsonValue& args, const char* key) {
  const JsonValue* value = args.Find(key);
  if (value == nullptr) {
    return 0;
  }
  if (value->kind == JsonValue::Kind::kString) {
    return ParseU64Text(value->text);
  }
  if (value->kind == JsonValue::Kind::kNumber) {
    return static_cast<uint64_t>(value->number);
  }
  return 0;
}

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kNumber ? value->number
                                                                     : fallback;
}

// Span midpoint / end in the file's own clock, as double µs.
double Mid(const MergeEvent& e) {
  return static_cast<double>(e.ts) + static_cast<double>(e.dur) / 2.0;
}
double End(const MergeEvent& e) { return static_cast<double>(e.ts + e.dur); }

const std::string* FindArg(const MergeEvent& e, const char* key) {
  for (const auto& [k, v] : e.args) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

}  // namespace

Result<ProcessTrace> ParseChromeTrace(std::string_view json, std::string source) {
  JsonParser parser(json);
  Result<JsonValue> doc = parser.Parse();
  if (!doc.ok()) {
    return ParseError(StrFormat("%s: %s", source.c_str(),
                                std::string(doc.status().message()).c_str()));
  }
  if (doc->kind != JsonValue::Kind::kObject) {
    return ParseError(StrFormat("%s: top level is not an object", source.c_str()));
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return ParseError(StrFormat("%s: missing traceEvents array", source.c_str()));
  }
  ProcessTrace trace;
  trace.source = std::move(source);
  trace.events.reserve(events->items.size());
  for (const JsonValue& raw : events->items) {
    if (raw.kind != JsonValue::Kind::kObject) {
      continue;
    }
    const JsonValue* ph = raw.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->text != "X") {
      continue;  // metadata / instant events carry no span timing
    }
    MergeEvent event;
    const JsonValue* name = raw.Find("name");
    if (name != nullptr && name->kind == JsonValue::Kind::kString) {
      event.name = name->text;
    }
    event.ts = static_cast<uint64_t>(NumberOr(raw.Find("ts"), 0.0));
    event.dur = static_cast<uint64_t>(NumberOr(raw.Find("dur"), 0.0));
    event.tid = static_cast<uint32_t>(NumberOr(raw.Find("tid"), 0.0));
    if (const JsonValue* args = raw.Find("args");
        args != nullptr && args->kind == JsonValue::Kind::kObject) {
      event.span_id = static_cast<int64_t>(NumberOr(args->Find("span_id"), -1.0));
      event.parent = static_cast<int64_t>(NumberOr(args->Find("parent"), -1.0));
      event.trace_id = IdArg(*args, "trace_id");
      event.remote_parent = IdArg(*args, "remote_parent");
      for (const auto& [key, value] : args->fields) {
        if (key == "span_id" || key == "parent" || key == "trace_id" ||
            key == "remote_parent") {
          continue;
        }
        event.args.emplace_back(key, ArgText(value));
      }
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

Result<std::vector<int64_t>> EstimateClockOffsets(const std::vector<ProcessTrace>& traces) {
  const size_t n = traces.size();
  std::vector<int64_t> offsets(n, 0);
  if (n <= 1) {
    return offsets;
  }

  // estimates[{i,j}]: values v with t_i ≈ t_j + v (convert file j's clock
  // into file i's). Every pairing is recorded in both directions.
  std::map<std::pair<size_t, size_t>, std::vector<double>> estimates;
  auto add_estimate = [&](size_t i, size_t j, double value) {
    estimates[{i, j}].push_back(value);
    estimates[{j, i}].push_back(-value);
  };

  // RPC pairs: a client span in file a and the server span it caused in
  // file b bracket the same request, so their midpoints coincide up to half
  // the (asymmetric) network delay.
  //
  // Pairing keys must be unique within their file: duplicate span ids (e.g.
  // the same trace file passed twice, or id reuse across restarts) would
  // otherwise cross-match every client copy against every server copy and
  // poison the offset mean. Ambiguous keys are dropped on both sides —
  // degrading to fewer estimates, never to wrong ones.
  std::vector<std::map<std::pair<uint64_t, uint64_t>, size_t>> client_keys(n);
  std::vector<std::map<std::pair<uint64_t, uint64_t>, size_t>> server_keys(n);
  for (size_t f = 0; f < n; ++f) {
    for (const MergeEvent& e : traces[f].events) {
      if (e.name == "svc.client.rpc" && e.trace_id != 0 && e.span_id >= 0) {
        ++client_keys[f][{e.trace_id, static_cast<uint64_t>(e.span_id) + 1}];
      } else if (e.name == "svc.rpc" && e.trace_id != 0 && e.remote_parent != 0) {
        ++server_keys[f][{e.trace_id, e.remote_parent}];
      }
    }
  }
  for (size_t a = 0; a < n; ++a) {
    for (const MergeEvent& client : traces[a].events) {
      if (client.name != "svc.client.rpc" || client.trace_id == 0 || client.span_id < 0) {
        continue;
      }
      uint64_t wire_id = static_cast<uint64_t>(client.span_id) + 1;
      if (client_keys[a][{client.trace_id, wire_id}] > 1) {
        continue;  // ambiguous: several client spans claim this identity
      }
      for (size_t b = 0; b < n; ++b) {
        if (b == a) {
          continue;
        }
        for (const MergeEvent& server : traces[b].events) {
          if (server.name == "svc.rpc" && server.trace_id == client.trace_id &&
              server.remote_parent == wire_id) {
            if (server_keys[b][{server.trace_id, server.remote_parent}] > 1) {
              continue;  // ambiguous: several server spans claim this parent
            }
            add_estimate(a, b, Mid(client) - Mid(server));
          }
        }
      }
    }
  }

  // Ring pairs: lockstep hops — the exchange with the same xseq in the same
  // session (trace id) ends at nearly the same instant on every peer.
  for (size_t a = 0; a < n; ++a) {
    for (const MergeEvent& left : traces[a].events) {
      if (left.name != "pia.ring.exchange" || left.trace_id == 0) {
        continue;
      }
      const std::string* left_seq = FindArg(left, "xseq");
      if (left_seq == nullptr) {
        continue;
      }
      for (size_t b = a + 1; b < n; ++b) {
        for (const MergeEvent& right : traces[b].events) {
          if (right.name != "pia.ring.exchange" || right.trace_id != left.trace_id) {
            continue;
          }
          const std::string* right_seq = FindArg(right, "xseq");
          if (right_seq != nullptr && *right_seq == *left_seq) {
            add_estimate(a, b, End(left) - End(right));
          }
        }
      }
    }
  }

  // Anchor file 0 and walk the pairing graph breadth-first; each step adds
  // the mean pairwise estimate. Files with no path to an anchored file keep
  // offset 0 (their clock is unknowable from the evidence given).
  std::vector<bool> anchored(n, false);
  anchored[0] = true;
  std::vector<size_t> queue{0};
  while (!queue.empty()) {
    size_t i = queue.back();
    queue.pop_back();
    for (size_t j = 0; j < n; ++j) {
      if (anchored[j]) {
        continue;
      }
      auto it = estimates.find({i, j});
      if (it == estimates.end() || it->second.empty()) {
        continue;
      }
      double sum = 0.0;
      for (double value : it->second) {
        sum += value;
      }
      double mean = sum / static_cast<double>(it->second.size());
      // offsets convert into file 0's clock: t_0 = t_i + offsets[i] and
      // t_i = t_j + mean, so offsets[j] = offsets[i] + mean.
      offsets[j] = offsets[i] + static_cast<int64_t>(mean);
      anchored[j] = true;
      queue.push_back(j);
    }
  }
  return offsets;
}

Result<std::string> MergeChromeTraces(const std::vector<ProcessTrace>& traces) {
  INDAAS_ASSIGN_OR_RETURN(std::vector<int64_t> offsets, EstimateClockOffsets(traces));

  // Shift the merged timeline so the earliest event lands at t=0 (Chrome
  // renders negative timestamps poorly).
  int64_t min_ts = 0;
  bool any = false;
  for (size_t f = 0; f < traces.size(); ++f) {
    for (const MergeEvent& event : traces[f].events) {
      int64_t adjusted = static_cast<int64_t>(event.ts) + offsets[f];
      if (!any || adjusted < min_ts) {
        min_ts = adjusted;
        any = true;
      }
    }
  }

  struct Placed {
    const MergeEvent* event;
    size_t file;
    int64_t ts;
  };
  std::vector<Placed> placed;
  for (size_t f = 0; f < traces.size(); ++f) {
    for (const MergeEvent& event : traces[f].events) {
      placed.push_back({&event, f, static_cast<int64_t>(event.ts) + offsets[f] - min_ts});
    }
  }
  std::stable_sort(placed.begin(), placed.end(),
                   [](const Placed& a, const Placed& b) { return a.ts < b.ts; });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (size_t f = 0; f < traces.size(); ++f) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(f + 1) +
           ",\"args\":{\"name\":\"" + JsonEscape(traces[f].source) + "\"}}";
    out += ",\n{\"name\":\"clock_offset_us\",\"ph\":\"M\",\"pid\":" + std::to_string(f + 1) +
           ",\"args\":{\"offset\":" + std::to_string(offsets[f]) + "}}";
  }
  for (const Placed& p : placed) {
    const MergeEvent& event = *p.event;
    out += ",\n{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"indaas\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(p.ts);
    out += ",\"dur\":" + std::to_string(event.dur);
    out += ",\"pid\":" + std::to_string(p.file + 1);
    out += ",\"tid\":" + std::to_string(event.tid);
    out += ",\"args\":{";
    out += "\"span_id\":" + std::to_string(event.span_id);
    out += ",\"parent\":" + std::to_string(event.parent);
    if (event.trace_id != 0) {
      out += ",\"trace_id\":\"" + std::to_string(event.trace_id) + "\"";
    }
    if (event.remote_parent != 0) {
      out += ",\"remote_parent\":\"" + std::to_string(event.remote_parent) + "\"";
    }
    for (const auto& [key, value] : event.args) {
      out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace indaas
