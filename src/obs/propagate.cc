#include "src/obs/propagate.h"

#include <atomic>
#include <chrono>
#include <random>

namespace indaas {
namespace obs {
namespace {

thread_local TraceContext tls_context;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ProcessFingerprint() {
  static const uint64_t fingerprint = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    return SplitMix64(seed);
  }();
  return fingerprint;
}

}  // namespace

TraceContext CurrentTraceContext() { return tls_context; }

const uint64_t* CurrentTraceIdAddress() { return &tls_context.trace_id; }

uint64_t NewTraceId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t id = SplitMix64(ProcessFingerprint() ^
                           counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

uint64_t DeriveTraceId(uint64_t seed) {
  uint64_t id = SplitMix64(seed ^ 0x494E4441534E4150ULL);  // "INDASNAP"
  return id == 0 ? 1 : id;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context) : saved_(tls_context) {
  tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

}  // namespace obs
}  // namespace indaas
