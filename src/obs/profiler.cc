#include "src/obs/profiler.h"

#include <errno.h>
#include <link.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iterator>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"

// Older glibc exposes the SIGEV_THREAD_ID target tid only through the
// union's internal name.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace indaas {
namespace obs {
namespace {

// Process-wide sampling switches. Plain globals with constant initialization
// so the allocation hook can consult them before main() and the SIGPROF
// handler can consult them without touching anything lazily constructed.
std::atomic<bool> g_cpu_sampling{false};
std::atomic<bool> g_alloc_sampling{false};
std::atomic<uint64_t> g_alloc_interval{512 * 1024};

// Re-entrancy guard for the allocation hook: recording a sample must never
// re-enter operator new, but the guard also protects against surprises in
// instrumented builds.
thread_local bool g_in_alloc_hook = false;

// Walks a frame-pointer chain. Every dereference is validated against the
// thread's stack bounds so a foreign or corrupt chain terminates the walk
// instead of faulting; the walk also insists frames move strictly upward,
// which defeats cycles. Async-signal-safe: reads memory and nothing else.
// `pc` (the interrupted instruction) is emitted first when nonzero.
size_t UnwindFramePointers(uintptr_t pc, uintptr_t fp, uintptr_t stack_lo,
                           uintptr_t stack_hi, uintptr_t* out, size_t max) {
  size_t n = 0;
  if (pc != 0 && n < max) out[n++] = pc;
  while (n < max) {
    if (fp < stack_lo || fp + 2 * sizeof(uintptr_t) > stack_hi ||
        (fp & (sizeof(uintptr_t) - 1)) != 0) {
      break;
    }
    const uintptr_t next_fp = *reinterpret_cast<const uintptr_t*>(fp);
    const uintptr_t ret = *reinterpret_cast<const uintptr_t*>(fp + sizeof(uintptr_t));
    if (ret < 0x1000) break;  // not a plausible code address
    out[n++] = ret;
    if (next_fp <= fp) break;  // frames must move up the stack
    fp = next_fp;
  }
  return n;
}

// dl_iterate_phdr callback: the first entry is the main executable; its
// dlpi_addr is the PIE relocation base symbolizers must subtract.
int FirstPhdrEntry(struct dl_phdr_info* info, size_t /*size*/, void* data) {
  *static_cast<uintptr_t*>(data) = static_cast<uintptr_t>(info->dlpi_addr);
  return 1;  // stop after the first entry
}

}  // namespace

uintptr_t ExecutableLoadBase() {
  static const uintptr_t base = [] {
    uintptr_t value = 0;
    dl_iterate_phdr(FirstPhdrEntry, &value);
    return value;
  }();
  return base;
}

const std::string& ExecutablePath() {
  static const std::string* path = [] {
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n < 0) n = 0;
    buf[n] = '\0';
    return new std::string(buf);
  }();
  return *path;
}

// --- Rings and thread state -------------------------------------------------

// One sample slot: fixed-size so the seqlock stays word-granular. meta packs
// tid (high 32) | flags (bits 17:16 = truncated, alloc) | depth (low 16);
// 0 = never written.
struct SampleSlot {
  std::atomic<uint64_t> t_us{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint64_t> weight{0};
  std::atomic<uint64_t> meta{0};
  std::array<std::atomic<uint64_t>, Profiler::kMaxFrames> pcs{};
};

// Single-writer sample ring (flight-recorder concurrency model). The CPU
// ring's writer is the owning thread's SIGPROF handler; the alloc ring's
// writer is the owning thread in normal context — the handler may interrupt
// an alloc-ring write, which is exactly why the two collectors never share
// a ring. `tail` is the drainer's read cursor; only the drainer (under the
// profiler mutex) touches it.
struct Profiler::Ring {
  std::array<SampleSlot, kRingCapacity> slots;
  std::atomic<uint64_t> head{0};
  uint64_t tail = 0;
};

struct Profiler::ThreadState {
  Ring* cpu_ring = nullptr;
  Ring* alloc_ring = nullptr;
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;
  // Captured at registration so the signal handler reads the ambient trace
  // id through a plain pointer — no TLS resolution in signal context.
  const uint64_t* trace_id_slot = nullptr;
  uint32_t trace_tid = 0;
  pid_t kernel_tid = 0;
  clockid_t cpu_clockid = 0;
  timer_t timer{};
  bool timer_armed = false;
  // Bytes until the next allocation sample; owner-thread mutated, reset by
  // Start() (benign cross-thread store, hence atomic relaxed).
  std::atomic<int64_t> alloc_budget{0};
  // Claimed by a live thread; cleared at thread exit so the state (and its
  // rings) can be adopted instead of leaking one per thread ever made.
  std::atomic<bool> in_use{false};
};

namespace {

thread_local Profiler::ThreadState* g_tls_state = nullptr;

// Appends one sample to `ring`. Single writer per ring: head needs no RMW.
// Async-signal-safe: relaxed word stores plus one release publish.
void WriteSample(Profiler::Ring* ring, const uintptr_t* frames, size_t depth,
                 uint64_t weight, bool truncated, bool alloc, uint64_t trace_id,
                 uint32_t tid) {
  const uint64_t seq = ring->head.load(std::memory_order_relaxed);
  SampleSlot& slot = ring->slots[seq % Profiler::kRingCapacity];
  slot.t_us.store(TraceNowMicros(), std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.weight.store(weight, std::memory_order_relaxed);
  for (size_t i = 0; i < depth; ++i) {
    slot.pcs[i].store(frames[i], std::memory_order_relaxed);
  }
  const uint64_t meta = (static_cast<uint64_t>(tid) << 32) |
                        (truncated ? 1ull << 17 : 0) | (alloc ? 1ull << 16 : 0) |
                        (depth & 0xffff);
  slot.meta.store(meta, std::memory_order_relaxed);
  ring->head.store(seq + 1, std::memory_order_release);
}

// The SIGPROF handler. Everything here follows the signal-safety rules in
// profiler.h: plain loads, a bounded frame-pointer walk, ring stores.
void OnProfSignal(int /*signo*/, siginfo_t* /*info*/, void* ucontext_raw) {
  Profiler::ThreadState* state = g_tls_state;
  if (state == nullptr || !g_cpu_sampling.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_raw);
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__x86_64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
  if (pc == 0) {
    errno = saved_errno;
    return;
  }
  uintptr_t frames[Profiler::kMaxFrames];
  const size_t depth = UnwindFramePointers(pc, fp, state->stack_lo, state->stack_hi,
                                           frames, Profiler::kMaxFrames);
  const uint64_t trace_id =
      state->trace_id_slot != nullptr ? *state->trace_id_slot : 0;
  WriteSample(state->cpu_ring, frames, depth, /*weight=*/1,
              depth == Profiler::kMaxFrames, /*alloc=*/false, trace_id,
              state->trace_tid);
  errno = saved_errno;
}

void CaptureStackBounds(uintptr_t* lo, uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  size_t size = 0;
  if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<uintptr_t>(addr);
    *hi = *lo + size;
  }
  pthread_attr_destroy(&attr);
}

// Drainer wakeup; lives outside the class so the header stays free of
// <condition_variable>.
std::condition_variable g_drainer_cv;

}  // namespace

// --- Profiler ---------------------------------------------------------------

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // leaked: signal handlers
  return *profiler;
}

Profiler::Profiler() {
  // Pre-create the counters the drainer folds into (and that servers
  // pre-register for scrapes); pointers from the registry are stable.
  MetricsRegistry::Global().GetCounter("obs.profile.samples");
  MetricsRegistry::Global().GetCounter("obs.profile.dropped");
  MetricsRegistry::Global().GetCounter("obs.profile.truncated_stacks");

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = OnProfSignal;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPROF, &sa, nullptr);
}

void Profiler::RegisterCurrentThread() {
  if (g_tls_state != nullptr) return;

  // Thread-exit hook: parks the state (and disarms its timer) so a later
  // thread can adopt it.
  struct TlsHolder {
    Profiler* profiler = nullptr;
    ThreadState* state = nullptr;
    ~TlsHolder() {
      if (state == nullptr) return;
      // Null the TLS pointer first: a signal pending from the dying timer
      // must find nothing to write through once the state is parked.
      g_tls_state = nullptr;
      std::lock_guard<std::mutex> lock(profiler->mu_);
      profiler->DisarmTimerLocked(state);
      state->in_use.store(false, std::memory_order_release);
    }
  };
  static thread_local TlsHolder holder;

  std::lock_guard<std::mutex> lock(mu_);
  ThreadState* state = nullptr;
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadState* existing = threads_[i].load(std::memory_order_acquire);
    if (existing != nullptr) {
      bool free_state = false;
      if (existing->in_use.compare_exchange_strong(free_state, true,
                                                   std::memory_order_acq_rel)) {
        state = existing;  // adopted from an exited thread
        break;
      }
      continue;
    }
    ThreadState* fresh = new ThreadState();
    fresh->cpu_ring = new Ring();
    fresh->alloc_ring = new Ring();
    fresh->in_use.store(true, std::memory_order_relaxed);
    threads_[i].store(fresh, std::memory_order_release);
    thread_count_.fetch_add(1, std::memory_order_relaxed);
    state = fresh;
    break;
  }
  if (state == nullptr) return;  // kMaxThreads live threads — stay unsampled

  CaptureStackBounds(&state->stack_lo, &state->stack_hi);
  state->trace_id_slot = CurrentTraceIdAddress();
  state->trace_tid = TraceThreadId();
  state->kernel_tid = static_cast<pid_t>(::syscall(SYS_gettid));
  if (pthread_getcpuclockid(pthread_self(), &state->cpu_clockid) != 0) {
    state->cpu_clockid = CLOCK_THREAD_CPUTIME_ID;
  }
  // Discard anything a previous owner left unread.
  state->cpu_ring->tail = state->cpu_ring->head.load(std::memory_order_acquire);
  state->alloc_ring->tail = state->alloc_ring->head.load(std::memory_order_acquire);
  state->alloc_budget.store(
      static_cast<int64_t>(g_alloc_interval.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);

  holder.profiler = this;
  holder.state = state;
  // Publish to TLS before arming: the first SIGPROF must find the state.
  g_tls_state = state;
  if (running_.load(std::memory_order_relaxed)) ArmTimerLocked(state);
}

void Profiler::ArmTimerLocked(ThreadState* state) {
  if (state->timer_armed || options_.hz == 0) return;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = state->kernel_tid;
  if (::timer_create(state->cpu_clockid, &sev, &state->timer) != 0) return;
  const long interval_ns = static_cast<long>(1000000000ull / options_.hz);
  struct itimerspec its;
  its.it_interval.tv_sec = interval_ns / 1000000000;
  its.it_interval.tv_nsec = interval_ns % 1000000000;
  its.it_value = its.it_interval;
  if (::timer_settime(state->timer, 0, &its, nullptr) != 0) {
    ::timer_delete(state->timer);
    return;
  }
  state->timer_armed = true;
}

void Profiler::DisarmTimerLocked(ThreadState* state) {
  if (!state->timer_armed) return;
  ::timer_delete(state->timer);
  state->timer_armed = false;
}

Status Profiler::Start(const ProfileOptions& options) {
  if (options.hz < 1 || options.hz > kMaxHz) {
    return Status(StatusCode::kInvalidArgument, "profile hz out of range [1, 1000]");
  }
  if (options.alloc && options.alloc_interval_bytes == 0) {
    return Status(StatusCode::kInvalidArgument, "alloc_interval_bytes must be nonzero");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed) || stopping_) {
    return Status(StatusCode::kUnavailable, "a profile session is already running");
  }
  options_ = options;
  buffer_.clear();
  buffer_trace_ids_.clear();
  dropped_ = 0;
  truncated_ = 0;
  session_start_us_ = TraceNowMicros();
  g_alloc_interval.store(options.alloc_interval_bytes, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxThreads; ++i) {
    ThreadState* state = threads_[i].load(std::memory_order_acquire);
    if (state == nullptr) break;
    // Discard samples from before this session.
    state->cpu_ring->tail = state->cpu_ring->head.load(std::memory_order_acquire);
    state->alloc_ring->tail = state->alloc_ring->head.load(std::memory_order_acquire);
    state->alloc_budget.store(static_cast<int64_t>(options.alloc_interval_bytes),
                              std::memory_order_relaxed);
    if (state->in_use.load(std::memory_order_acquire)) ArmTimerLocked(state);
  }
  g_cpu_sampling.store(true, std::memory_order_relaxed);
  g_alloc_sampling.store(options.alloc, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  drainer_stop_.store(false, std::memory_order_relaxed);
  drainer_ = std::thread([this] { DrainLoop(); });
  return Status::Ok();
}

ProfileData Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) return ProfileData();
    running_.store(false, std::memory_order_release);
    stopping_ = true;
    g_cpu_sampling.store(false, std::memory_order_relaxed);
    g_alloc_sampling.store(false, std::memory_order_relaxed);
    for (size_t i = 0; i < kMaxThreads; ++i) {
      ThreadState* state = threads_[i].load(std::memory_order_acquire);
      if (state == nullptr) break;
      DisarmTimerLocked(state);
    }
    drainer_stop_.store(true, std::memory_order_relaxed);
  }
  g_drainer_cv.notify_all();
  if (drainer_.joinable()) drainer_.join();

  std::lock_guard<std::mutex> lock(mu_);
  DrainOnce();
  ProfileData data;
  data.hz = options_.hz;
  data.start_us = session_start_us_;
  data.end_us = TraceNowMicros();
  data.exe_base = ExecutableLoadBase();
  data.exe_path = ExecutablePath();
  data.dropped = dropped_;
  data.truncated_stacks = truncated_;
  data.trace_ids = std::move(buffer_trace_ids_);
  data.samples.assign(std::make_move_iterator(buffer_.begin()),
                      std::make_move_iterator(buffer_.end()));
  buffer_.clear();
  buffer_trace_ids_.clear();
  stopping_ = false;
  return data;
}

Result<ProfileData> Profiler::WindowedCapture(uint32_t hz, uint32_t seconds,
                                              bool alloc) {
  if (seconds < 1 || seconds > kMaxWindowSeconds) {
    return Status(StatusCode::kInvalidArgument, "profile seconds out of range [1, 60]");
  }
  if (running_.load(std::memory_order_acquire)) {
    // Continuous mode: cut a time window out of the running session without
    // disturbing it. The session's own frequency applies, not `hz`.
    // Snapshot the loss counters first so the window reports its own
    // delta, not hours of session-cumulative drops.
    uint64_t dropped_before = 0;
    uint64_t truncated_before = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      DrainOnce();  // fold pre-window ring contents into the baseline
      dropped_before = dropped_;
      truncated_before = truncated_;
    }
    const uint64_t window_start = TraceNowMicros();
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    std::lock_guard<std::mutex> lock(mu_);
    DrainOnce();  // pick up the freshest ring contents
    ProfileData data;
    data.hz = options_.hz;
    data.start_us = window_start;
    data.end_us = TraceNowMicros();
    data.exe_base = ExecutableLoadBase();
    data.exe_path = ExecutablePath();
    // Saturating deltas: a Stop/Start race during the window resets the
    // counters, in which case the post-reset values are the closest truth.
    data.dropped = dropped_ >= dropped_before ? dropped_ - dropped_before : dropped_;
    data.truncated_stacks =
        truncated_ >= truncated_before ? truncated_ - truncated_before : truncated_;
    for (const ProfileSample& sample : buffer_) {
      if (sample.t_us < window_start) continue;
      data.samples.push_back(sample);
      if (sample.trace_id != 0 && data.trace_ids.size() < kMaxWindowTraceIds &&
          std::find(data.trace_ids.begin(), data.trace_ids.end(), sample.trace_id) ==
              data.trace_ids.end()) {
        data.trace_ids.push_back(sample.trace_id);
      }
    }
    return data;
  }
  ProfileOptions options;
  options.hz = hz;
  options.alloc = alloc;
  Status started = Start(options);
  if (!started.ok()) return started;
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  return Stop();
}

void Profiler::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!drainer_stop_.load(std::memory_order_relaxed)) {
    g_drainer_cv.wait_for(lock, std::chrono::milliseconds(20));
    DrainOnce();
  }
}

size_t Profiler::DrainOnce() {
  Counter* samples_counter = MetricsRegistry::Global().GetCounter("obs.profile.samples");
  Counter* dropped_counter = MetricsRegistry::Global().GetCounter("obs.profile.dropped");
  Counter* truncated_counter =
      MetricsRegistry::Global().GetCounter("obs.profile.truncated_stacks");
  size_t moved = 0;
  uint64_t dropped_now = 0;
  uint64_t truncated_now = 0;
  for (size_t t = 0; t < kMaxThreads; ++t) {
    ThreadState* state = threads_[t].load(std::memory_order_acquire);
    if (state == nullptr) break;
    for (Ring* ring : {state->cpu_ring, state->alloc_ring}) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      uint64_t tail = ring->tail;
      if (head - tail > kRingCapacity) {
        dropped_now += head - kRingCapacity - tail;
        tail = head - kRingCapacity;
      }
      for (uint64_t seq = tail; seq < head; ++seq) {
        const SampleSlot& slot = ring->slots[seq % kRingCapacity];
        ProfileSample sample;
        sample.t_us = slot.t_us.load(std::memory_order_relaxed);
        sample.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        sample.weight = slot.weight.load(std::memory_order_relaxed);
        const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
        const size_t depth = std::min<size_t>(meta & 0xffff, kMaxFrames);
        sample.frames.resize(depth);
        for (size_t i = 0; i < depth; ++i) {
          sample.frames[i] =
              static_cast<uintptr_t>(slot.pcs[i].load(std::memory_order_relaxed));
        }
        // Revalidate: once head reaches seq + kRingCapacity the writer has
        // started (not necessarily finished — head publishes after the slot
        // stores) overwriting this slot, so the copy may be torn. >= and
        // not >: at head == seq + kRingCapacity the overwrite is already
        // in flight.
        if (ring->head.load(std::memory_order_acquire) >= seq + kRingCapacity) {
          ++dropped_now;
          continue;
        }
        if (meta == 0 || depth == 0) continue;
        sample.tid = static_cast<uint32_t>(meta >> 32);
        sample.truncated = (meta & (1ull << 17)) != 0;
        sample.alloc = (meta & (1ull << 16)) != 0;
        if (sample.truncated) ++truncated_now;
        AppendLocked(sample);
        ++moved;
      }
      ring->tail = head;
    }
  }
  if (options_.continuous) {
    // Sliding-window retention: nobody can request a window longer than
    // kMaxWindowSeconds, so anything older (plus slack for drainer latency)
    // is unreachable — evict it instead of letting the buffer saturate and
    // starve future windows. Aging out is not sample loss, so no drop count.
    const uint64_t horizon_us =
        static_cast<uint64_t>(kMaxWindowSeconds + 2) * 1000000ull;
    const uint64_t now_us = TraceNowMicros();
    const uint64_t cutoff_us = now_us > horizon_us ? now_us - horizon_us : 0;
    while (!buffer_.empty() && buffer_.front().t_us < cutoff_us) {
      buffer_.pop_front();
    }
  }
  samples_counter->Add(moved);
  if (dropped_now > 0) dropped_counter->Add(dropped_now);
  if (truncated_now > 0) truncated_counter->Add(truncated_now);
  dropped_ += dropped_now;
  truncated_ += truncated_now;
  return moved;
}

void Profiler::AppendLocked(const ProfileSample& sample) {
  if (buffer_.size() >= kMaxSessionSamples) {
    if (options_.continuous) {
      // The age-based sweep could not keep the buffer under the cap (a
      // sustained sample rate over ~17k/s): shed the oldest so the newest
      // window stays intact. These were inside the retention horizon, so
      // they do count as dropped.
      buffer_.pop_front();
      ++dropped_;
    } else {
      ++dropped_;
      return;
    }
  }
  if (sample.trace_id != 0 && buffer_trace_ids_.size() < kMaxWindowTraceIds &&
      std::find(buffer_trace_ids_.begin(), buffer_trace_ids_.end(), sample.trace_id) ==
          buffer_trace_ids_.end()) {
    buffer_trace_ids_.push_back(sample.trace_id);
  }
  buffer_.push_back(sample);
}

void Profiler::OnAlloc(size_t size) {
  if (!g_alloc_sampling.load(std::memory_order_relaxed)) return;
  ThreadState* state = g_tls_state;
  if (state == nullptr || g_in_alloc_hook) return;
  const int64_t budget =
      state->alloc_budget.load(std::memory_order_relaxed) - static_cast<int64_t>(size);
  if (budget > 0) {
    state->alloc_budget.store(budget, std::memory_order_relaxed);
    return;
  }
  g_in_alloc_hook = true;
  const int64_t interval =
      static_cast<int64_t>(g_alloc_interval.load(std::memory_order_relaxed));
  state->alloc_budget.store(interval, std::memory_order_relaxed);
  // The sample stands for every byte allocated since the previous one.
  const uint64_t weight = static_cast<uint64_t>(interval - budget);
  uintptr_t frames[kMaxFrames];
  const uintptr_t fp = reinterpret_cast<uintptr_t>(__builtin_frame_address(0));
  const size_t depth = UnwindFramePointers(/*pc=*/0, fp, state->stack_lo,
                                           state->stack_hi, frames, kMaxFrames);
  if (depth > 0) {
    const uint64_t trace_id =
        state->trace_id_slot != nullptr ? *state->trace_id_slot : 0;
    WriteSample(state->alloc_ring, frames, depth, weight, depth == kMaxFrames,
                /*alloc=*/true, trace_id, state->trace_tid);
  }
  g_in_alloc_hook = false;
}

// --- Dump format ------------------------------------------------------------

namespace {

constexpr char kProfileDumpHeader[] = "# indaas-profile v1";

void AppendHex(std::string* out, uint64_t value) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(value));
  out->append(buf);
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  size_t i = 0;
  if (token.size() > 2 && token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
    for (i = 2; i < token.size(); ++i) {
      const char c = token[i];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A') + 10;
      } else {
        return false;
      }
      value = (value << 4) | digit;
    }
  } else {
    for (; i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') return false;
      value = value * 10 + static_cast<uint64_t>(token[i] - '0');
    }
  }
  *out = value;
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

}  // namespace

std::string ProfileToDumpText(const ProfileData& data) {
  std::string out;
  out.reserve(64 + data.samples.size() * 96);
  out += kProfileDumpHeader;
  out += "\n# exe ";
  out += data.exe_path;
  out += "\n# base ";
  AppendHex(&out, data.exe_base);
  out += "\n# hz ";
  out += std::to_string(data.hz);
  out += "\n# window_us ";
  out += std::to_string(data.start_us);
  out += ' ';
  out += std::to_string(data.end_us);
  out += "\n# counts samples ";
  out += std::to_string(data.samples.size());
  out += " dropped ";
  out += std::to_string(data.dropped);
  out += " truncated ";
  out += std::to_string(data.truncated_stacks);
  out += '\n';
  if (!data.trace_ids.empty()) {
    out += "# trace_ids";
    for (uint64_t id : data.trace_ids) {
      out += ' ';
      AppendHex(&out, id);
    }
    out += '\n';
  }
  for (const ProfileSample& sample : data.samples) {
    out += sample.alloc ? "alloc " : "cpu ";
    out += std::to_string(sample.t_us);
    out += ' ';
    AppendHex(&out, sample.trace_id);
    out += ' ';
    out += std::to_string(sample.tid);
    out += ' ';
    out += std::to_string(sample.weight);
    for (uintptr_t pc : sample.frames) {
      out += ' ';
      AppendHex(&out, pc);
    }
    if (sample.truncated) out += " T";
    out += '\n';
  }
  return out;
}

bool ParseProfileDumpText(const std::string& text, ProfileData* out) {
  *out = ProfileData();
  bool saw_header = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::vector<std::string_view> tokens = SplitTokens(line.substr(1));
      if (tokens.empty()) continue;
      if (!saw_header) {
        // The first comment line must be the version header.
        if (line == kProfileDumpHeader) {
          saw_header = true;
          continue;
        }
        return false;
      }
      uint64_t value = 0;
      if (tokens[0] == "exe" && tokens.size() >= 2) {
        out->exe_path.assign(tokens[1].data(), tokens[1].size());
      } else if (tokens[0] == "base" && tokens.size() >= 2 && ParseU64(tokens[1], &value)) {
        out->exe_base = static_cast<uintptr_t>(value);
      } else if (tokens[0] == "hz" && tokens.size() >= 2 && ParseU64(tokens[1], &value)) {
        out->hz = static_cast<uint32_t>(value);
      } else if (tokens[0] == "window_us" && tokens.size() >= 3) {
        uint64_t end = 0;
        if (ParseU64(tokens[1], &value) && ParseU64(tokens[2], &end)) {
          out->start_us = value;
          out->end_us = end;
        }
      } else if (tokens[0] == "counts") {
        for (size_t i = 1; i + 1 < tokens.size(); i += 2) {
          if (!ParseU64(tokens[i + 1], &value)) continue;
          if (tokens[i] == "dropped") out->dropped = value;
          if (tokens[i] == "truncated") out->truncated_stacks = value;
        }
      } else if (tokens[0] == "trace_ids") {
        for (size_t i = 1; i < tokens.size() && i <= Profiler::kMaxWindowTraceIds; ++i) {
          if (ParseU64(tokens[i], &value)) out->trace_ids.push_back(value);
        }
      }
      continue;
    }
    if (!saw_header) return false;
    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens.size() < 5) continue;
    ProfileSample sample;
    if (tokens[0] == "cpu") {
      sample.alloc = false;
    } else if (tokens[0] == "alloc") {
      sample.alloc = true;
    } else {
      continue;
    }
    uint64_t t_us = 0;
    uint64_t trace_id = 0;
    uint64_t tid = 0;
    uint64_t weight = 0;
    if (!ParseU64(tokens[1], &t_us) || !ParseU64(tokens[2], &trace_id) ||
        !ParseU64(tokens[3], &tid) || !ParseU64(tokens[4], &weight)) {
      continue;
    }
    sample.t_us = t_us;
    sample.trace_id = trace_id;
    sample.tid = static_cast<uint32_t>(tid);
    sample.weight = weight;
    for (size_t i = 5; i < tokens.size(); ++i) {
      if (tokens[i] == "T") {
        sample.truncated = true;
        continue;
      }
      uint64_t pc = 0;
      if (!ParseU64(tokens[i], &pc)) continue;
      if (sample.frames.size() < Profiler::kMaxFrames) {
        sample.frames.push_back(static_cast<uintptr_t>(pc));
      }
    }
    if (sample.frames.empty()) continue;
    if (out->samples.size() < Profiler::kMaxSessionSamples) {
      out->samples.push_back(std::move(sample));
    }
  }
  return saw_header;
}

}  // namespace obs
}  // namespace indaas

// --- Global allocation hooks ------------------------------------------------
//
// Replacing the global operators is what lets the profiler attribute heap
// churn without a malloc shim or LD_PRELOAD. These definitions live in
// profiler.o, so only binaries that link the profiler get the hook; when
// sampling is off the overhead is one relaxed atomic load per allocation.

void* operator new(std::size_t size) {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr) indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr != nullptr) indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (size + static_cast<std::size_t>(align) - 1) &
                                     ~(static_cast<std::size_t>(align) - 1));
  if (ptr == nullptr) throw std::bad_alloc();
  indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = std::aligned_alloc(static_cast<std::size_t>(align),
                                 (size + static_cast<std::size_t>(align) - 1) &
                                     ~(static_cast<std::size_t>(align) - 1));
  if (ptr == nullptr) throw std::bad_alloc();
  indaas::obs::Profiler::OnAlloc(size);
  return ptr;
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); }
