#include "src/obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/obs/trace.h"

namespace indaas {
namespace obs {
namespace {

// Async-signal-safe u64 → decimal. Returns the number of chars written
// (no terminator). `buf` must hold at least 20 chars.
size_t FormatU64(uint64_t value, char* buf) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;  // nothing sensible to do in signal context
    data += n;
    size -= static_cast<size_t>(n);
  }
}

// One dump line: "t_us tid type code a b trace_id\n". Returns length.
size_t FormatEventLine(const FlightEvent& event, char* buf) {
  size_t pos = 0;
  const uint64_t fields[7] = {event.t_us,
                              event.tid,
                              static_cast<uint64_t>(event.type),
                              event.code,
                              event.a,
                              event.b,
                              event.trace_id};
  for (int i = 0; i < 7; ++i) {
    if (i != 0) buf[pos++] = ' ';
    pos += FormatU64(fields[i], buf + pos);
  }
  buf[pos++] = '\n';
  return pos;
}

constexpr char kDumpHeader[] = "# indaas-flight-recorder v1\n";

// Synthetic trailer event marking when (and on which thread) this dump was
// taken — the anchor a post-mortem aligns the event tail against.
FlightEvent DumpMarkerEvent() {
  FlightEvent event;
  event.t_us = TraceNowMicros();
  event.tid = TraceThreadId();
  event.type = FlightEventType::kDump;
  return event;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone:
      return "none";
    case FlightEventType::kAccept:
      return "accept";
    case FlightEventType::kConnClose:
      return "conn_close";
    case FlightEventType::kShed:
      return "shed";
    case FlightEventType::kSlowReaderDrop:
      return "slow_reader_drop";
    case FlightEventType::kReadDeadline:
      return "read_deadline";
    case FlightEventType::kRpcBegin:
      return "rpc_begin";
    case FlightEventType::kRpcEnd:
      return "rpc_end";
    case FlightEventType::kLoopLag:
      return "loop_lag";
    case FlightEventType::kDump:
      return "dump";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked: signal handlers
  return *recorder;
}

FlightRecorder::ThreadRingHolder::~ThreadRingHolder() {
  if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
}

FlightRecorder::Ring* FlightRecorder::AcquireRing() {
  for (size_t i = 0; i < kMaxRings; ++i) {
    Ring* existing = rings_[i].load(std::memory_order_acquire);
    if (existing != nullptr) {
      bool free_ring = false;
      if (existing->in_use.compare_exchange_strong(free_ring, true,
                                                   std::memory_order_acq_rel)) {
        return existing;  // adopted a parked ring from an exited thread
      }
      continue;
    }
    Ring* fresh = new Ring();
    fresh->in_use.store(true, std::memory_order_relaxed);
    Ring* expected = nullptr;
    if (rings_[i].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
      ring_count_.fetch_add(1, std::memory_order_relaxed);
      return fresh;
    }
    delete fresh;
    --i;  // slot was filled concurrently; try to adopt it
  }
  return nullptr;  // kMaxRings live threads — stop recording on this one
}

FlightRecorder::Ring* FlightRecorder::ThreadRing() {
  static thread_local ThreadRingHolder holder;
  if (holder.ring == nullptr) holder.ring = AcquireRing();
  return holder.ring;
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b, uint16_t code,
                            uint64_t trace_id) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = ThreadRing();
  if (ring == nullptr) return;
  // Single writer per ring (the owning thread), so head needs no RMW.
  const uint64_t seq = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[seq % kRingCapacity];
  slot.t_us.store(TraceNowMicros(), std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  const uint64_t meta = (static_cast<uint64_t>(TraceThreadId()) << 32) |
                        (static_cast<uint64_t>(type) << 16) | code;
  slot.meta.store(meta, std::memory_order_relaxed);
  ring->head.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::CopyRing(const Ring& ring, std::vector<FlightEvent>* out) {
  const uint64_t head = ring.head.load(std::memory_order_acquire);
  const uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
  for (uint64_t seq = begin; seq < head; ++seq) {
    const Slot& slot = ring.slots[seq % kRingCapacity];
    FlightEvent event;
    event.t_us = slot.t_us.load(std::memory_order_relaxed);
    event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    // Revalidate: once head reaches seq + kRingCapacity the writer has
    // started (not necessarily finished — head publishes after the slot
    // stores) overwriting this slot, so the copy may be mixed. >= and not
    // >: at head == seq + kRingCapacity the overwrite is already in flight.
    if (ring.head.load(std::memory_order_acquire) >= seq + kRingCapacity) continue;
    if (meta == 0) continue;
    event.tid = static_cast<uint32_t>(meta >> 32);
    event.type = static_cast<FlightEventType>((meta >> 16) & 0xffff);
    event.code = static_cast<uint16_t>(meta & 0xffff);
    out->push_back(event);
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  for (size_t i = 0; i < kMaxRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) break;  // rings are filled left to right
    CopyRing(*ring, &out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.t_us < y.t_us; });
  return out;
}

std::string FlightRecorder::DumpText() const {
  std::string out = kDumpHeader;
  char line[8 * 24];
  for (const FlightEvent& event : Snapshot()) {
    out.append(line, FormatEventLine(event, line));
  }
  out.append(line, FormatEventLine(DumpMarkerEvent(), line));
  return out;
}

void FlightRecorder::DumpToFd(int fd) const {
  WriteAll(fd, kDumpHeader, sizeof(kDumpHeader) - 1);
  char line[8 * 24];
  for (size_t i = 0; i < kMaxRings; ++i) {
    const Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) break;
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = head > kRingCapacity ? head - kRingCapacity : 0;
    for (uint64_t seq = begin; seq < head; ++seq) {
      const Slot& slot = ring->slots[seq % kRingCapacity];
      FlightEvent event;
      event.t_us = slot.t_us.load(std::memory_order_relaxed);
      event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      event.a = slot.a.load(std::memory_order_relaxed);
      event.b = slot.b.load(std::memory_order_relaxed);
      const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      if (ring->head.load(std::memory_order_acquire) > seq + kRingCapacity) continue;
      if (meta == 0) continue;
      event.tid = static_cast<uint32_t>(meta >> 32);
      event.type = static_cast<FlightEventType>((meta >> 16) & 0xffff);
      event.code = static_cast<uint16_t>(meta & 0xffff);
      WriteAll(fd, line, FormatEventLine(event, line));
    }
  }
  WriteAll(fd, line, FormatEventLine(DumpMarkerEvent(), line));
}

size_t FlightRecorder::ParseDumpText(std::string_view text, std::vector<FlightEvent>* out) {
  size_t parsed = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    uint64_t fields[7];
    size_t cursor = 0;
    int field = 0;
    bool bad = false;
    while (field < 7) {
      while (cursor < line.size() && line[cursor] == ' ') ++cursor;
      if (cursor >= line.size() || line[cursor] < '0' || line[cursor] > '9') {
        bad = true;
        break;
      }
      uint64_t value = 0;
      while (cursor < line.size() && line[cursor] >= '0' && line[cursor] <= '9') {
        value = value * 10 + static_cast<uint64_t>(line[cursor] - '0');
        ++cursor;
      }
      fields[field++] = value;
    }
    if (bad) continue;
    FlightEvent event;
    event.t_us = fields[0];
    event.tid = static_cast<uint32_t>(fields[1]);
    event.type = static_cast<FlightEventType>(fields[2]);
    event.code = static_cast<uint16_t>(fields[3]);
    event.a = fields[4];
    event.b = fields[5];
    event.trace_id = fields[6];
    out->push_back(event);
    ++parsed;
  }
  return parsed;
}

// --- Signal handlers --------------------------------------------------------

namespace {

char g_dump_path[512] = {0};

// Everything here must stay async-signal-safe: open/write/close only.
void DumpToConfiguredPath() {
  int fd = STDERR_FILENO;
  bool opened = false;
  if (g_dump_path[0] != '\0') {
    int file = ::open(g_dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (file >= 0) {
      fd = file;
      opened = true;
    }
  }
  FlightRecorder::Global().DumpToFd(fd);
  if (opened) ::close(fd);
}

void OnDumpSignal(int /*signo*/) { DumpToConfiguredPath(); }

void OnFatalSignal(int signo) {
  DumpToConfiguredPath();
  struct sigaction dfl;
  std::memset(&dfl, 0, sizeof(dfl));
  dfl.sa_handler = SIG_DFL;
  ::sigaction(signo, &dfl, nullptr);
  ::raise(signo);
}

}  // namespace

void InstallFlightRecorderSignalHandlers(const std::string& path) {
  std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", path.c_str());
  FlightRecorder::Global();  // construct outside signal context

  struct sigaction dump;
  std::memset(&dump, 0, sizeof(dump));
  dump.sa_handler = OnDumpSignal;
  ::sigemptyset(&dump.sa_mask);
  dump.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR2, &dump, nullptr);

  struct sigaction fatal;
  std::memset(&fatal, 0, sizeof(fatal));
  fatal.sa_handler = OnFatalSignal;
  ::sigemptyset(&fatal.sa_mask);
  for (int signo : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    ::sigaction(signo, &fatal, nullptr);
  }
}

// --- Tail sampler -----------------------------------------------------------

const char* RpcStageName(RpcStage stage) {
  switch (stage) {
    case RpcStage::kRead:
      return "read";
    case RpcStage::kDecode:
      return "decode";
    case RpcStage::kQueue:
      return "queue";
    case RpcStage::kCompute:
      return "compute";
    case RpcStage::kEncode:
      return "encode";
    case RpcStage::kWrite:
      return "write";
  }
  return "unknown";
}

const char* TailOutcomeName(TailOutcome outcome) {
  switch (outcome) {
    case TailOutcome::kSlow:
      return "slow";
    case TailOutcome::kError:
      return "error";
    case TailOutcome::kShed:
      return "shed";
  }
  return "unknown";
}

TailSampler& TailSampler::Global() {
  static TailSampler* sampler = new TailSampler();
  return *sampler;
}

void TailSampler::Configure(double slow_threshold_s, size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_s_.store(slow_threshold_s, std::memory_order_relaxed);
  capacity_ = capacity > 0 ? capacity : 1;
  samples_.clear();
  samples_.shrink_to_fit();
  next_ = 0;
  wrapped_ = false;
}

bool TailSampler::Offer(const TailSample& sample) {
  const double threshold = slow_threshold_s_.load(std::memory_order_relaxed);
  const bool interesting = sample.outcome == TailOutcome::kError ||
                           sample.outcome == TailOutcome::kShed ||
                           (threshold > 0 && sample.total_s >= threshold);
  if (!interesting) return false;  // fast successes never pay the lock
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < capacity_) {
    samples_.push_back(sample);
    next_ = samples_.size() % capacity_;
    return true;
  }
  samples_[next_] = sample;
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  return true;
}

std::vector<TailSample> TailSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TailSample> out;
  out.reserve(samples_.size());
  if (wrapped_) {
    for (size_t i = 0; i < samples_.size(); ++i) {
      out.push_back(samples_[(next_ + i) % samples_.size()]);
    }
  } else {
    out = samples_;
  }
  return out;
}

std::vector<TailSample> TailSampler::TopSlowest(size_t k) const {
  std::vector<TailSample> all = Snapshot();
  std::stable_sort(all.begin(), all.end(), [](const TailSample& x, const TailSample& y) {
    return x.total_s > y.total_s;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

void TailSampler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  next_ = 0;
  wrapped_ = false;
}

}  // namespace obs
}  // namespace indaas
