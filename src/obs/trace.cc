#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>

#include "src/obs/propagate.h"

namespace indaas {
namespace obs {
namespace {

// Innermost open span on this thread; children link to it as their parent.
struct ThreadSpanState {
  int64_t current = -1;
  uint32_t depth = 0;
};

ThreadSpanState& TlsSpanState() {
  thread_local ThreadSpanState state;
  return state;
}

}  // namespace

uint64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Reset(size_t capacity) {
  capacity_ = capacity;
  slots_ = std::make_unique<Slot[]>(capacity);
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

int64_t TraceRecorder::Claim() {
  int64_t id = next_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<size_t>(id) >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return -1;
  }
  return id;
}

void TraceRecorder::Commit(int64_t id, SpanRecord record) {
  Slot& slot = slots_[static_cast<size_t>(id)];
  slot.record = std::move(record);
  slot.ready.store(true, std::memory_order_release);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  std::vector<SpanRecord> out;
  int64_t claimed = next_.load(std::memory_order_relaxed);
  size_t upper = std::min(static_cast<size_t>(claimed < 0 ? 0 : claimed), capacity_);
  out.reserve(upper);
  for (size_t i = 0; i < upper; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) {
      out.push_back(slots_[i].record);
    }
  }
  return out;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) {
    return;
  }
  id_ = recorder.Claim();
  if (id_ < 0) {
    return;
  }
  ThreadSpanState& state = TlsSpanState();
  saved_parent_ = state.current;
  depth_ = saved_parent_ >= 0 ? state.depth + 1 : 0;
  state.current = id_;
  state.depth = depth_;
  TraceContext ctx = CurrentTraceContext();
  trace_id_ = ctx.trace_id;
  if (saved_parent_ < 0) {
    // Only roots link across processes; nested spans already have a local
    // parent and inherit the trace id alone.
    remote_parent_ = ctx.parent_span_id;
  }
  start_us_ = TraceNowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (id_ < 0) {
    return;
  }
  uint64_t end_us = TraceNowMicros();
  ThreadSpanState& state = TlsSpanState();
  state.current = saved_parent_;
  state.depth = depth_ > 0 ? depth_ - 1 : 0;
  SpanRecord record;
  record.name = name_;
  record.annotations = std::move(annotations_);
  record.start_us = start_us_;
  record.dur_us = end_us - start_us_;
  record.tid = TraceThreadId();
  record.id = id_;
  record.parent = saved_parent_;
  record.depth = depth_;
  record.trace_id = trace_id_;
  record.remote_parent = remote_parent_;
  TraceRecorder::Global().Commit(id_, std::move(record));
}

void ScopedSpan::Annotate(const char* key, std::string value) {
  if (id_ < 0) {
    return;
  }
  annotations_.emplace_back(key, std::move(value));
}

}  // namespace obs
}  // namespace indaas
