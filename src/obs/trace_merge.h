// Merging per-process Chrome traces into one distributed timeline
// (DESIGN.md §6, "distributed tracing").
//
// Each INDaaS process exports its spans with SpansToChromeTrace against its
// own trace epoch (microseconds since that process started tracing), so the
// raw files disagree about what time it is. This module parses the
// per-process files back into span events, estimates each file's clock
// offset from span pairs that are known to be (near-)simultaneous across
// processes, and emits one Chrome trace where every process is a separate
// pid on a common timeline:
//
//   - an AuditClient "svc.client.rpc" span and the AuditServer "svc.rpc"
//     span it caused (matched by trace id + remote_parent == wire span id)
//     bracket the same request, so aligning their midpoints cancels the
//     clock skew up to half the network round trip;
//   - PIA ring peers run their "pia.ring.exchange" hops in lockstep, so
//     same-xseq hops on different peers end at (nearly) the same instant.
//
// Offsets are propagated breadth-first from the first file through every
// file that shares at least one such pair with an already-anchored file;
// files with no cross-process evidence keep their own clock (offset 0).

#ifndef SRC_OBS_TRACE_MERGE_H_
#define SRC_OBS_TRACE_MERGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace indaas {
namespace obs {

// One complete-span event parsed back out of a Chrome trace file.
struct MergeEvent {
  std::string name;
  uint64_t ts = 0;   // µs, in the source process's clock
  uint64_t dur = 0;  // µs
  uint32_t tid = 0;
  int64_t span_id = -1;
  int64_t parent = -1;
  uint64_t trace_id = 0;       // 0 = process-local span
  uint64_t remote_parent = 0;  // wire span id of the remote caller (roots)
  // Remaining args (depth, annotations), as key -> literal JSON-free text.
  std::vector<std::pair<std::string, std::string>> args;
};

// All events from one per-process trace file.
struct ProcessTrace {
  std::string source;  // label for the merged output (usually the filename)
  std::vector<MergeEvent> events;
};

// Parses one Chrome trace document (as written by SpansToChromeTrace;
// tolerant of extra top-level keys and metadata events, which are skipped).
Result<ProcessTrace> ParseChromeTrace(std::string_view json, std::string source);

// Per-file clock offsets in µs: adding offsets[i] to every timestamp of
// traces[i] expresses it in traces[0]'s clock. offsets[0] is always 0.
Result<std::vector<int64_t>> EstimateClockOffsets(const std::vector<ProcessTrace>& traces);

// Merges the parsed traces into one Chrome trace JSON document: clocks
// aligned via EstimateClockOffsets, the whole timeline shifted so the
// earliest event starts at 0, file i rendered as pid i+1 with a
// process_name metadata row naming its source.
Result<std::string> MergeChromeTraces(const std::vector<ProcessTrace>& traces);

}  // namespace obs
}  // namespace indaas

#endif  // SRC_OBS_TRACE_MERGE_H_
