// Scoped tracing spans for the audit pipeline (DESIGN.md §6).
//
// A span covers one pipeline stage: it records its name, wall-clock start
// and duration, the recording thread, and its parent span (the innermost
// enclosing span on the same thread), forming a per-thread span tree.
// Spans carry optional key=value annotations ("engine=bitset", "groups=294").
//
// Recording is off by default: a disabled ScopedSpan is two relaxed loads
// and no clock read, so instrumented hot paths are free when nobody is
// tracing. When enabled, span ids are claimed from a fixed-capacity ring of
// slots with one relaxed fetch_add at span start; the record is written by
// the owning thread only and published with a release store at span end, so
// Snapshot() can run concurrently with writers (it acquire-loads each slot's
// ready flag and skips unpublished slots). Once the ring is full further
// spans are counted as dropped rather than wrapping, which keeps every slot
// single-writer.
//
// Usage:
//   INDAAS_TRACE_SPAN("sia.enumerate");            // anonymous, scope-wide
//   INDAAS_TRACE_SPAN_NAMED(span, "sia.rank");     // named, for Annotate()
//   span.Annotate("engine", "bitset");

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace indaas {
namespace obs {

// One finished span, as exported by TraceRecorder::Snapshot().
struct SpanRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> annotations;
  uint64_t start_us = 0;  // microseconds since the process trace epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;       // dense per-thread index, not the OS thread id
  int64_t id = -1;        // claim order == start order
  int64_t parent = -1;    // id of the enclosing span on this thread, -1 = root
  uint32_t depth = 0;     // 0 for roots
  // Distributed identity (src/obs/propagate.h): the trace id installed on
  // the recording thread when the span started (0 = process-local span),
  // and — for root spans only — the remote caller's wire span id.
  uint64_t trace_id = 0;
  uint64_t remote_parent = 0;
};

// Microseconds since the process-wide trace epoch (steady clock).
uint64_t TraceNowMicros();

// Dense index of the calling thread, stable for its lifetime.
uint32_t TraceThreadId();

// Global collector of finished spans.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  // Turns recording on/off. Spans started while disabled record nothing.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all records and resizes the ring. Must not race with in-flight
  // spans: call it before enabling tracing or after all traced work joined.
  void Reset(size_t capacity = kDefaultCapacity);

  // Copies every published span, ordered by id (== start order). Safe while
  // writers are active; spans still open are simply not included yet.
  std::vector<SpanRecord> Snapshot() const;

  // Spans that found the ring full and were discarded.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Internal (ScopedSpan): claims a slot id, or -1 when full/disabled.
  int64_t Claim();
  // Internal (ScopedSpan): fills slot `id` and publishes it.
  void Commit(int64_t id, SpanRecord record);

  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  TraceRecorder() { Reset(kDefaultCapacity); }

  struct Slot {
    SpanRecord record;
    std::atomic<bool> ready{false};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> next_{0};
  std::atomic<uint64_t> dropped_{0};
  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;
};

// RAII span: claims its id at construction (establishing itself as the
// current parent for nested spans on this thread) and commits the finished
// record at destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key=value annotation (no-op when the span is not recording).
  void Annotate(const char* key, std::string value);

  bool recording() const { return id_ >= 0; }

  // This span's local id (-1 when not recording). Cross-process callers
  // propagate obs::WireSpanId(span_id()) so 0 can mean "no span".
  int64_t span_id() const { return id_; }

 private:
  const char* name_;
  int64_t id_ = -1;
  int64_t saved_parent_ = -1;
  uint32_t depth_ = 0;
  uint64_t start_us_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t remote_parent_ = 0;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

}  // namespace obs
}  // namespace indaas

#define INDAAS_OBS_CONCAT_(a, b) a##b
#define INDAAS_OBS_CONCAT(a, b) INDAAS_OBS_CONCAT_(a, b)

// Anonymous scoped span covering the rest of the enclosing block.
#define INDAAS_TRACE_SPAN(name) \
  ::indaas::obs::ScopedSpan INDAAS_OBS_CONCAT(indaas_trace_span_, __LINE__)(name)

// Named scoped span, for call sites that annotate the span later.
#define INDAAS_TRACE_SPAN_NAMED(var, name) ::indaas::obs::ScopedSpan var(name)

#endif  // SRC_OBS_TRACE_H_
