#include "src/obs/log.h"

#include <sys/time.h>

#include <cinttypes>
#include <cmath>
#include <cstring>
#include <ctime>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/propagate.h"
#include "src/obs/trace.h"

namespace indaas {
namespace obs {
namespace {

Counter* EmittedCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter("obs.log.emitted");
  return counter;
}

Counter* SuppressedCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter("obs.log.suppressed");
  return counter;
}

uint64_t WallMicros() {
  struct timeval tv;
  ::gettimeofday(&tv, nullptr);
  return static_cast<uint64_t>(tv.tv_sec) * 1000000u + static_cast<uint64_t>(tv.tv_usec);
}

// True when the value needs quoting in the text format (empty, spaces,
// quotes, '=' or control characters would break k=v tokenization).
bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' ||
        static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendWallTimestamp(std::string* out, uint64_t wall_us) {
  time_t seconds = static_cast<time_t>(wall_us / 1000000u);
  struct tm utc;
  ::gmtime_r(&seconds, &utc);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02d.%06uZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<unsigned>(wall_us % 1000000u));
  out->append(buffer);
}

const char* BaseName(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "debug";
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarn:
      return "warn";
    case LogSeverity::kError:
      return "error";
  }
  return "unknown";
}

void TextLogSink::Write(const LogRecord& record) {
  std::string line;
  line.reserve(96 + record.event.size());
  const char sev_tag[] = {'D', 'I', 'W', 'E'};
  int sev_index = static_cast<int>(record.severity);
  line.push_back(sev_index >= 0 && sev_index < 4 ? sev_tag[sev_index] : '?');
  line.push_back(' ');
  AppendWallTimestamp(&line, record.wall_us);
  line.push_back(' ');
  line.append(record.event);
  for (const LogField& field : record.fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    if (!field.is_number && NeedsQuoting(field.value)) {
      AppendQuoted(&line, field.value);
    } else {
      line.append(field.value);
    }
  }
  if (record.trace_id != 0) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), " trace=%" PRIu64, record.trace_id);
    line.append(buffer);
  }
  if (record.suppressed != 0) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), " suppressed=%" PRIu64, record.suppressed);
    line.append(buffer);
  }
  char site[96];
  std::snprintf(site, sizeof(site), " (%s:%d tid=%u)\n", BaseName(record.file), record.line,
                record.tid);
  line.append(site);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

std::string JsonLogSink::Render(const LogRecord& record) {
  std::string out;
  out.reserve(160 + record.event.size());
  char buffer[96];
  out.append("{\"sev\":\"");
  out.append(LogSeverityName(record.severity));
  std::snprintf(buffer, sizeof(buffer),
                "\",\"t_us\":%" PRIu64 ",\"wall_us\":%" PRIu64 ",\"event\":\"", record.t_us,
                record.wall_us);
  out.append(buffer);
  out.append(JsonEscape(record.event));
  out.push_back('"');
  std::snprintf(buffer, sizeof(buffer), ",\"tid\":%u", record.tid);
  out.append(buffer);
  if (record.trace_id != 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"trace_id\":\"%" PRIu64 "\"", record.trace_id);
    out.append(buffer);
  }
  std::snprintf(buffer, sizeof(buffer), ",\"src\":\"%s:%d\"", BaseName(record.file),
                record.line);
  out.append(buffer);
  if (record.suppressed != 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"suppressed\":%" PRIu64, record.suppressed);
    out.append(buffer);
  }
  if (!record.fields.empty()) {
    out.append(",\"kv\":{");
    bool first = true;
    for (const LogField& field : record.fields) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out.append(JsonEscape(field.key));
      out.append("\":");
      if (field.is_number) {
        out.append(field.value);
      } else {
        out.push_back('"');
        out.append(JsonEscape(field.value));
        out.push_back('"');
      }
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

void JsonLogSink::Write(const LogRecord& record) {
  std::string line = Render(record);
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
}

void CaptureLogSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<LogRecord> CaptureLogSink::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  out.swap(records_);
  return out;
}

Logger::Logger() : sink_(std::make_shared<TextLogSink>(stderr)) {}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: outlives static destructors
  return *logger;
}

void Logger::SetSink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) sink = std::make_shared<TextLogSink>(stderr);
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::Log(LogRecord record) {
  if (!Enabled(record.severity)) return;
  EmittedCounter()->Increment();
  if (record.suppressed != 0) SuppressedCounter()->Add(record.suppressed);
  std::lock_guard<std::mutex> lock(mu_);
  sink_->Write(record);
}

uint64_t LogSite::NowMicros() { return TraceNowMicros(); }

bool LogSite::Admit(double per_sec, uint64_t now_us) {
  if (per_sec <= 0) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t budget = static_cast<uint64_t>(std::ceil(per_sec));
  uint64_t window = window_start_us_.load(std::memory_order_relaxed);
  if (now_us >= window + 1000000u) {
    // A new one-second window. Whoever wins the CAS resets the admission
    // count; losers just admit into the fresh window below.
    if (window_start_us_.compare_exchange_strong(window, now_us, std::memory_order_relaxed)) {
      admitted_in_window_.store(0, std::memory_order_relaxed);
    }
  }
  uint64_t admitted = admitted_in_window_.fetch_add(1, std::memory_order_relaxed);
  if (admitted < budget) return true;
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

LogEventBuilder::LogEventBuilder(LogSeverity severity, const char* file, int line,
                                 const char* event, uint64_t suppressed) {
  record_.severity = severity;
  record_.t_us = TraceNowMicros();
  record_.wall_us = WallMicros();
  record_.tid = TraceThreadId();
  record_.trace_id = CurrentTraceContext().trace_id;
  record_.file = file;
  record_.line = line;
  record_.event = event;
  record_.suppressed = suppressed;
}

LogEventBuilder::~LogEventBuilder() { Logger::Global().Log(std::move(record_)); }

LogEventBuilder& LogEventBuilder::Kv(const char* key, std::string_view value) {
  record_.fields.push_back(LogField{key, std::string(value), false});
  return *this;
}

LogEventBuilder& LogEventBuilder::Kv(const char* key, bool value) {
  record_.fields.push_back(LogField{key, value ? "true" : "false", true});
  return *this;
}

LogEventBuilder& LogEventBuilder::Kv(const char* key, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  record_.fields.push_back(LogField{key, buffer, true});
  return *this;
}

LogEventBuilder& LogEventBuilder::KvInt(const char* key, int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  record_.fields.push_back(LogField{key, buffer, true});
  return *this;
}

LogEventBuilder& LogEventBuilder::KvUint(const char* key, uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  record_.fields.push_back(LogField{key, buffer, true});
  return *this;
}

}  // namespace obs
}  // namespace indaas
