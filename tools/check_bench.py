#!/usr/bin/env python3
"""Flags performance regressions between BENCH_*.json snapshots.

Each snapshot (written by tools/collect_bench.py) maps benchmark names to
{"p50_seconds": ..., "bytes": ..., "config": {...}}. This script compares
the newest snapshot against the previous one and fails when any shared
benchmark slowed down by more than the threshold (default 15%). Timing
noise on small absolute values is common, so points faster than --min-
seconds are reported but never fatal.

Usage (from the repo root):
    tools/check_bench.py                      # newest vs latest BENCH_pr*.json
    tools/check_bench.py --baseline=BENCH_pr8.json   # pin the baseline
    tools/check_bench.py BENCH_a.json BENCH_b.json   # explicit pair (old new)

Without an explicit pair, the newest snapshot is compared against the
baseline: --baseline when given, else the latest PR-tagged snapshot
(BENCH_pr<N>.json with the highest N, excluding the snapshot under test).
The chosen baseline and how it was selected are named in the output, so a
CI log never leaves "against what?" ambiguous.
"""

import argparse
import json
import pathlib
import re
import sys


def snapshot_order(path):
    """Sort key: numeric PR suffix when present (pr2 < pr10), else mtime."""
    match = re.search(r"BENCH_\D*(\d+)", path.name)
    if match:
        return (0, int(match.group(1)))
    return (1, path.stat().st_mtime)


def load(path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"error: cannot read {path}: {error}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="*", type=pathlib.Path,
                        help="explicit old/new snapshot pair; default: the two "
                             "newest BENCH_*.json in --dir")
    parser.add_argument("--dir", default=".", help="where to look for BENCH_*.json")
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="snapshot to compare the newest one against; "
                             "default: the latest BENCH_pr<N>.json that is not "
                             "the snapshot under test")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional slowdown that counts as a regression")
    parser.add_argument("--min-seconds", type=float, default=1e-4,
                        help="ignore regressions on points faster than this")
    args = parser.parse_args()

    if args.snapshots and len(args.snapshots) != 2:
        parser.error("pass exactly two snapshots (old new), or none")
    if args.snapshots and args.baseline:
        parser.error("--baseline conflicts with an explicit (old new) pair")
    if args.snapshots:
        old_path, new_path = args.snapshots
        baseline_how = "explicit pair"
    else:
        # Prefer the PR-tagged series for both sides: ad-hoc local files
        # (BENCH_scratch.json, stray --json-out docs) sort after the pr
        # series by mtime and must not silently become the snapshot under
        # test or the regression baseline.
        found = sorted(pathlib.Path(args.dir).glob("BENCH_*.json"), key=snapshot_order)
        pr_tagged = [p for p in found
                     if re.fullmatch(r"BENCH_pr\d+\.json", p.name)]
        series = pr_tagged or found
        if not series:
            sys.exit(f"error: no BENCH_*.json under {args.dir}")
        new_path = series[-1]
        if args.baseline:
            old_path = args.baseline
            baseline_how = "pinned via --baseline"
            if old_path.resolve() == new_path.resolve():
                sys.exit(f"error: --baseline {old_path} is the newest snapshot "
                         "itself — nothing to compare against")
        else:
            if len(series) == 1:
                doc = load(new_path)
                print(f"{new_path}: {len(doc)} benchmarks, no previous snapshot "
                      "to compare against — baseline OK")
                return
            old_path = series[-2]
            baseline_how = ("auto-selected latest prior BENCH_pr<N>.json"
                            if pr_tagged else "auto-selected newest other snapshot")

    old, new = load(old_path), load(new_path)
    # "_"-prefixed keys are snapshot provenance (git SHA, hostname), not
    # benchmarks: surface them for context, never compare them.
    old_meta, new_meta = old.get("_metadata"), new.get("_metadata")
    old = {k: v for k, v in old.items() if not k.startswith("_")}
    new = {k: v for k, v in new.items() if not k.startswith("_")}
    shared = sorted(set(old) & set(new))
    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    print(f"comparing {new_path} against baseline {old_path} ({baseline_how}): "
          f"{len(shared)} shared benchmarks "
          f"({len(added)} new, {len(removed)} gone)")
    for label, meta in (("old", old_meta), ("new", new_meta)):
        if meta:
            print(f"  {label}: sha={meta.get('git_sha', '?')[:12]} "
                  f"host={meta.get('hostname', '?')}")
            # Collected with fault injection live (INDAAS_CHAOS was set):
            # the numbers measure the chaos plan, not the code. Flag loudly
            # but keep comparing — a chaos-vs-chaos pair can still be
            # interesting; a chaos-vs-clean pair is the thing to distrust.
            if meta.get("chaos_plan"):
                print(f"  {label}: WARNING collected under chaos plan "
                      f"'{meta['chaos_plan']}' — timings reflect injected "
                      "faults, not code performance")
    for name in added:
        print(f"  new:  {name}")
    for name in removed:
        print(f"  gone: {name}")

    regressions = []
    for name in shared:
        before = old[name]["p50_seconds"]
        after = new[name]["p50_seconds"]
        if before <= 0:
            continue
        ratio = after / before
        marker = " "
        if ratio > 1 + args.threshold:
            if before >= args.min_seconds and after >= args.min_seconds:
                regressions.append(name)
                marker = "!"
            else:
                marker = "~"  # too fast to trust the delta
        elif ratio < 1 - args.threshold:
            marker = "+"
        print(f"  {marker} {name}: {before:.6f}s -> {after:.6f}s ({ratio:.2f}x)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed by more than "
              f"{args.threshold:.0%}:")
        for name in regressions:
            print(f"  {name}")
        sys.exit(1)
    print("\nOK: no regression beyond the threshold")


if __name__ == "__main__":
    main()
