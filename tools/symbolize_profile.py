#!/usr/bin/env python3
"""Symbolizes an indaas profile dump offline with addr2line.

The GetProfile RPC (and `indaas profile --format=dump`) ship raw runtime
addresses so the serving process never touches its own symbol tables. This
script turns a dump into human-readable output on the operator's machine,
where the matching binary (with debug info) lives:

    tools/symbolize_profile.py profile.txt                  # collapsed stacks
    tools/symbolize_profile.py profile.txt --top=20         # hottest functions
    tools/symbolize_profile.py profile.txt --alloc          # allocation bytes
    tools/symbolize_profile.py profile.txt --exe=build/indaas

Collapsed output is flamegraph.pl / speedscope input: one line per unique
stack, root-first frames joined by ';', trailing sample count (CPU) or byte
count (--alloc).

The dump header carries the executable's path and its PIE load base; PCs
are symbolized as `pc - base` against that binary (override a mismatched
path with --exe). Frames addr2line cannot resolve keep their hex address,
so a stripped binary still yields a structurally-correct flamegraph.
"""

import argparse
import collections
import shutil
import subprocess
import sys


def parse_dump(path):
    """Parses ProfileToDumpText output (see src/obs/profiler.h).

    Returns (header dict, samples). Each sample is
    (kind, t_us, trace_id, tid, weight, [pc, ...leaf-first], truncated).
    """
    header = {"exe": "", "base": 0, "hz": 0, "samples": 0, "dropped": 0, "truncated": 0}
    samples = []
    saw_magic = False
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                fields = line[1:].split()
                if fields[:2] == ["indaas-profile", "v1"]:
                    saw_magic = True
                elif fields[:1] == ["exe"] and len(fields) > 1:
                    header["exe"] = fields[1]
                elif fields[:1] == ["base"] and len(fields) > 1:
                    header["base"] = int(fields[1], 16)
                elif fields[:1] == ["hz"] and len(fields) > 1:
                    header["hz"] = int(fields[1])
                elif fields[:1] == ["counts"]:
                    pairs = dict(zip(fields[1::2], fields[2::2]))
                    for key in ("samples", "dropped", "truncated"):
                        if key in pairs:
                            header[key] = int(pairs[key])
                continue
            fields = line.split()
            if len(fields) < 5 or fields[0] not in ("cpu", "alloc"):
                continue
            truncated = fields[-1] == "T"
            frame_fields = fields[5 : len(fields) - 1 if truncated else len(fields)]
            try:
                samples.append(
                    (
                        fields[0],
                        int(fields[1]),
                        int(fields[2], 0),
                        int(fields[3]),
                        int(fields[4]),
                        [int(pc, 16) for pc in frame_fields],
                        truncated,
                    )
                )
            except ValueError:
                continue  # hostile or corrupt line: skip, keep the rest
    if not saw_magic:
        raise ValueError(f"{path}: not an indaas-profile v1 dump")
    return header, samples


def symbolize(pcs, exe, base, addr2line="addr2line"):
    """Maps each runtime pc to 'function (file:line)' via one addr2line run.

    Unresolvable frames (no binary, stripped, JIT) map to their hex address.
    """
    names = {pc: hex(pc) for pc in pcs}
    if not exe or not shutil.which(addr2line):
        return names
    ordered = sorted(pcs)
    try:
        proc = subprocess.run(
            [addr2line, "-f", "-C", "-e", exe]
            + [hex(pc - base) for pc in ordered],
            capture_output=True,
            text=True,
            timeout=120,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return names
    lines = proc.stdout.splitlines()
    # addr2line emits two lines per address: function, then file:line.
    for i, pc in enumerate(ordered):
        if 2 * i + 1 >= len(lines):
            break
        func = lines[2 * i].strip()
        if func and func != "??":
            names[pc] = func
    return names


def collapse(samples, names, kind):
    """Aggregates samples into collapsed stacks: {root;..;leaf: weight}."""
    stacks = collections.Counter()
    for sample_kind, _t, _trace, _tid, weight, frames, _trunc in samples:
        if sample_kind != kind or not frames:
            continue
        stack = ";".join(names[pc] for pc in reversed(frames))
        stacks[stack] += weight if kind == "alloc" else 1
    return stacks


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="profile dump file (indaas profile --out=...)")
    parser.add_argument("--exe", default="", help="binary to symbolize against "
                        "(default: the '# exe' path recorded in the dump)")
    parser.add_argument("--alloc", action="store_true",
                        help="aggregate allocation samples (bytes) instead of CPU samples")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="print the N hottest leaf functions instead of collapsed stacks")
    parser.add_argument("--addr2line", default="addr2line",
                        help="addr2line binary (e.g. llvm-addr2line)")
    args = parser.parse_args()

    try:
        header, samples = parse_dump(args.dump)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    kind = "alloc" if args.alloc else "cpu"
    wanted = [s for s in samples if s[0] == kind]
    if not wanted:
        print(f"error: {args.dump} holds no {kind} samples", file=sys.stderr)
        return 1

    pcs = {pc for s in wanted for pc in s[5]}
    exe = args.exe or header["exe"]
    names = symbolize(pcs, exe, header["base"], args.addr2line)
    resolved = sum(1 for name in names.values() if not name.startswith("0x"))
    print(
        f"# {len(wanted)} {kind} samples, {len(pcs)} unique frames "
        f"({resolved} symbolized), hz={header['hz']}, "
        f"dropped={header['dropped']}, truncated={header['truncated']}",
        file=sys.stderr,
    )

    if args.top > 0:
        # Leaf attribution: weight lands on the innermost frame, the
        # classic "self time" view.
        leaves = collections.Counter()
        for _kind, _t, _trace, _tid, weight, frames, _trunc in wanted:
            leaves[names[frames[0]]] += weight if kind == "alloc" else 1
        total = sum(leaves.values())
        unit = "bytes" if kind == "alloc" else "samples"
        for name, count in leaves.most_common(args.top):
            print(f"{count:>12} {unit}  {100.0 * count / total:5.1f}%  {name}")
        return 0

    for stack, weight in sorted(collapse(wanted, names, kind).items()):
        print(f"{stack} {weight}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
