#!/usr/bin/env python3
"""Collects the per-PR benchmark snapshot (BENCH_<tag>.json).

Runs the machine-readable benchmarks and folds their --json-out documents
into one flat snapshot at the repo root:

    {"<benchmark name>": {"p50_seconds": ..., "bytes": ..., "config": {...}}}

Usage (from the repo root, after building):
    tools/collect_bench.py --tag=pr5 [--build=build] [--fig8-n-max=10000]

Compare snapshots across PRs with tools/check_bench.py.
"""

import argparse
import json
import os
import pathlib
import socket
import subprocess
import sys
import tempfile


def snapshot_metadata(tag):
    """Provenance stamped into the snapshot under "_metadata".

    Keys starting with "_" are not benchmarks; check_bench.py skips them.
    Knowing which commit and host produced a snapshot is what makes a
    cross-PR comparison interpretable (a 10% swing across hosts is noise;
    on the same host it is a finding).
    """
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], check=True, capture_output=True, text=True
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        git_sha = "unknown"
    metadata = {"tag": tag, "git_sha": git_sha, "hostname": socket.gethostname()}
    # A chaos plan in the environment poisons every number below: injected
    # delays/stalls look like real regressions. Record it so check_bench.py
    # can flag the comparison instead of letting it pass as a clean run.
    chaos_plan = os.environ.get("INDAAS_CHAOS")
    if chaos_plan:
        metadata["chaos_plan"] = chaos_plan
    return metadata


def run_bench(cmd):
    print("+ " + " ".join(cmd), file=sys.stderr)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def collect_risk_groups(build, workdir):
    """bench_risk_groups: one entry per (topology case, engine)."""
    out = workdir / "risk_groups.json"
    run_bench([str(build / "bench" / "bench_risk_groups"), f"--json-out={out}"])
    doc = json.loads(out.read_text())
    snapshot = {}
    for result in doc["results"]:
        name = f"risk_groups/{result['bench']}/{result['engine']}"
        snapshot[name] = {
            "p50_seconds": result["ns_per_op"] / 1e9,
            "bytes": 0,
            "config": {
                "topology": result["topology"],
                "engine": result["engine"],
                "groups": result["groups"],
                "reps": doc["reps"],
                "threads": doc["threads"],
            },
        }
    return snapshot


def collect_fig8(build, workdir, n_max):
    """bench_fig8 --real: one entry per loopback-ring (k, n) point."""
    out = workdir / "fig8.json"
    run_bench([
        str(build / "bench" / "bench_fig8_pia_overheads"),
        "--real",
        "--ks-n-cap=0",  # the KS baseline is minutes-slow and has no JSON row
        f"--n-max={n_max}",
        f"--json-out={out}",
    ])
    doc = json.loads(out.read_text())
    snapshot = {}
    for point in doc["real_points"]:
        name = f"fig8_psop_ring/k{point['k']}_n{point['n']}"
        snapshot[name] = {
            "p50_seconds": point["measured_wall_s"],
            "bytes": point.get("bytes_sent", 0),
            "config": {
                "k": point["k"],
                "n": point["n"],
                "estimated_wall_s": point["estimated_wall_s"],
                "matches_inprocess": point["matches_inprocess"],
            },
        }
    # Per-method bytes-on-wire: exact P-SOP vs MinHash-sampled vs sketch
    # exchange at the same (k, n). The bytes column is the headline — the
    # sketch rows stay flat as n grows while exact rows scale linearly.
    for point in doc["methods"]:
        name = f"fig8_methods/{point['method']}/k{point['k']}_n{point['n']}"
        snapshot[name] = {
            "p50_seconds": point["compute_s_per_party"],
            "bytes": point["bytes_sent_per_party"],
            "config": {
                "method": point["method"],
                "k": point["k"],
                "n": point["n"],
                "jaccard": point["jaccard"],
            },
        }
    return snapshot


def collect_sketch_allpairs(build, workdir):
    """bench_sketch_allpairs: all-pairs sketch audit plus SIMD kernel points.

    --skip-calib skips the exact-P-SOP calibration ring (seconds per pair);
    the snapshot keeps the audit wall time, the candidate-pair reduction and
    the scalar/SIMD intersect costs, which is what regressions show up in.
    """
    out = workdir / "sketch_allpairs.json"
    run_bench([
        str(build / "bench" / "bench_sketch_allpairs"),
        "--skip-calib",
        f"--json-out={out}",
    ])
    doc = json.loads(out.read_text())
    providers = doc["providers"]
    snapshot = {
        f"sketch_allpairs/audit_p{providers}": {
            "p50_seconds": doc["audit_wall_s"],
            "bytes": doc["sketch_bytes_total"],
            "config": {
                "providers": providers,
                "sketch_k": doc["sketch_k"],
                "lsh_bands": doc["lsh_bands"],
                "lsh_rows": doc["lsh_rows"],
                "pairs_evaluated": doc["pairs_evaluated"],
                "ring_exec_reduction": doc["ring_exec_reduction"],
                "recall_top10": doc["recall_top10"],
                "mae_candidates": doc["mae_candidates"],
            },
        },
        "sketch_allpairs/intersect_scalar": {
            "p50_seconds": doc["scalar_ns_per_pair"] / 1e9,
            "bytes": 0,
            "config": {"elements": doc["elements"]},
        },
        f"sketch_allpairs/intersect_{doc['simd_level']}": {
            "p50_seconds": doc["simd_ns_per_pair"] / 1e9,
            "bytes": 0,
            "config": {
                "elements": doc["elements"],
                "simd_speedup": doc["simd_speedup"],
            },
        },
    }
    for point in doc["k_sweep"]:
        snapshot[f"sketch_allpairs/build_k{point['k']}"] = {
            "p50_seconds": point["build_s"],
            "bytes": point["bytes_per_provider"],
            "config": {"k": point["k"], "mae_planted": point["mae_planted"]},
        }
    return snapshot


def collect_svc_rpc(build, workdir):
    """bench_svc_rpc: serial client RPC latency (ping and structural audit).

    Runs the same RPC mix twice — profiler off, then sampling at the
    production default of 99 Hz — so every snapshot carries the measured
    continuous-profiling overhead. The profiled rows get their own names
    (svc_rpc/<phase>_profiled99) so the baseline svc_rpc/<phase> series
    stays comparable across PRs, and each profiled row records the
    off-vs-on ratio from the same collection run in its config.
    """
    docs = {}
    for hz in (0, 99):
        out = workdir / f"svc_rpc_hz{hz}.json"
        run_bench([
            str(build / "bench" / "bench_svc_rpc"),
            f"--profile-hz={hz}",
            f"--json-out={out}",
        ])
        docs[hz] = json.loads(out.read_text())
    snapshot = {}
    for phase in ("ping", "audit"):
        off = docs[0][phase]
        on = docs[99][phase]
        snapshot[f"svc_rpc/{phase}"] = {
            "p50_seconds": off["us_per_rpc"] / 1e6,
            "bytes": 0,
            "config": {"rpcs": off["rpcs"]},
        }
        snapshot[f"svc_rpc/{phase}_profiled99"] = {
            "p50_seconds": on["us_per_rpc"] / 1e6,
            "bytes": 0,
            "config": {
                "rpcs": on["rpcs"],
                "profile_hz": 99,
                "overhead_vs_off": on["us_per_rpc"] / off["us_per_rpc"],
            },
        }
    return snapshot


def collect_svc_saturation(build, workdir):
    """bench_svc_saturation: pipelining gain, sustained concurrency, open loop."""
    out = workdir / "svc_saturation.json"
    run_bench([str(build / "bench" / "bench_svc_saturation"), f"--json-out={out}"])
    doc = json.loads(out.read_text())
    snapshot = {
        "svc_saturation/mux_ping": {
            "p50_seconds": 1.0 / doc["pipelining"]["mux_rps"],
            "bytes": 0,
            "config": doc["pipelining"],
        },
    }
    for run in doc["sustained"]:
        name = f"svc_saturation/{run['mode']}_c{run['conns']}"
        snapshot[name] = {
            "p50_seconds": run["p50_ms"] / 1e3,
            "bytes": 0,
            "config": {
                "mode": run["mode"],
                "conns": run["conns"],
                "sustained": run["sustained"],
                "completed": run["completed"],
                "p99_ms": run["p99_ms"],
            },
        }
    for run in doc["open_loop"]:
        name = f"svc_saturation/openloop_r{run['rate']:.0f}"
        snapshot[name] = {
            "p50_seconds": run["p50_ms"] / 1e3,
            "bytes": 0,
            "config": {
                "rate": run["rate"],
                "achieved_rps": run["achieved_rps"],
                "shed": run["shed"],
                "p99_ms": run["p99_ms"],
            },
        }
    return snapshot


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tag", required=True, help="snapshot tag, e.g. pr5")
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--fig8-n-max", type=int, default=1000,
                        help="largest --real ring dataset (keeps collection fast)")
    parser.add_argument("--out-dir", default=".", help="where BENCH_<tag>.json lands")
    args = parser.parse_args()

    build = pathlib.Path(args.build)
    snapshot = {"_metadata": snapshot_metadata(args.tag)}
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        snapshot.update(collect_risk_groups(build, workdir))
        snapshot.update(collect_fig8(build, workdir, args.fig8_n_max))
        snapshot.update(collect_sketch_allpairs(build, workdir))
        snapshot.update(collect_svc_rpc(build, workdir))
        snapshot.update(collect_svc_saturation(build, workdir))

    out_path = pathlib.Path(args.out_dir) / f"BENCH_{args.tag}.json"
    out_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    benchmarks = sum(1 for name in snapshot if not name.startswith("_"))
    print(f"wrote {out_path} ({benchmarks} benchmarks)")


if __name__ == "__main__":
    main()
